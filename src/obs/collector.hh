/**
 * @file
 * The per-scenario observation collector and its thread-local hookup.
 *
 * The instrumented layers must not know about each other: CanonFabric
 * cannot see runner jobs, the cache cannot see fabrics, and none of
 * them may grow observability parameters through every call signature.
 * Instead the job runner installs a Collector for the current thread
 * (ScopedCollector), and each layer that has something to report asks
 * obs::current() -- a single thread-local read that returns nullptr
 * whenever observability is off, which is the entire disabled-path
 * cost.
 *
 * A Collector belongs to exactly one scenario execution on one worker
 * thread; finish() freezes it into an immutable ScenarioObs that rides
 * the ScenarioResult back to the engine's report layer. Everything
 * recorded is a function of simulated behaviour only, so scenario
 * observations are byte-stable across --jobs and registration-shuffle
 * seeds.
 */

#ifndef CANON_OBS_COLLECTOR_HH
#define CANON_OBS_COLLECTOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/accounting.hh"
#include "obs/host.hh"
#include "obs/options.hh"
#include "obs/series.hh"

namespace canon
{

class StatGroup;

namespace obs
{

/** Result-cache interactions, in the order the runner performed them. */
enum class CacheEventKind
{
    Probe, //!< lookup issued
    Hit,   //!< decodable entry returned
    Miss,  //!< no usable entry; simulation will execute
    Store, //!< freshly computed result persisted
};

/** One fabric execution inside a scenario (one measured pass). */
struct FabricRunObs
{
    std::uint64_t cycles = 0;
    /** Sampled series (empty unless --sample-every is active). */
    SeriesSet series;
    /**
     * Flat stats view at run end, captured only for --stats-json.
     * Note: values are the owning fabric's cumulative counters; for
     * workloads that reuse one fabric across passes, later runs
     * include earlier runs' counts.
     */
    std::map<std::string, std::uint64_t> flat;
    /**
     * Per-component cycle accounting + occupancy histograms (empty
     * unless --cycle-accounting is active). Cumulative like flat:
     * later passes on a reused fabric include earlier passes.
     */
    AccountingSet accounting;
};

/** Everything observed while executing one scenario. */
struct ScenarioObs
{
    ObsOptions options;
    std::vector<FabricRunObs> runs;
    std::vector<CacheEventKind> cacheEvents;
    /** Host wall-clock phase durations (--host-timers only). */
    HostPhaseTimes host;
};

class Collector
{
  public:
    explicit Collector(const ObsOptions &opt) { obs_.options = opt; }

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    const ObsOptions &options() const { return obs_.options; }
    bool sampling() const { return obs_.options.sampling(); }
    bool accounting() const { return obs_.options.cycleAccounting; }

    /** Record one finished fabric run (called by CanonFabric::run). */
    void recordFabricRun(const StatGroup &stats, std::uint64_t cycles,
                         SeriesSet series,
                         AccountingSet accounting = {});

    void recordCacheEvent(CacheEventKind kind)
    {
        obs_.cacheEvents.push_back(kind);
    }

    /** Attach host phase timings (called by the scenario runner). */
    void recordHostTimes(const HostPhaseTimes &t) { obs_.host = t; }

    /** Freeze the observations; the collector is spent afterwards. */
    std::shared_ptr<const ScenarioObs> finish();

  private:
    ScenarioObs obs_;
};

/**
 * The collector observing the current thread, or nullptr when
 * observability is off. Instrumented layers read this exactly once per
 * reporting site.
 */
Collector *current();

/** Installs @p c as current() for the enclosing scope (re-entrant). */
class ScopedCollector
{
  public:
    explicit ScopedCollector(Collector &c);
    ~ScopedCollector();

    ScopedCollector(const ScopedCollector &) = delete;
    ScopedCollector &operator=(const ScopedCollector &) = delete;

  private:
    Collector *prev_;
};

} // namespace obs
} // namespace canon

#endif // CANON_OBS_COLLECTOR_HH
