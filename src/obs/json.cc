#include "obs/json.hh"

#include <ostream>

namespace canon
{
namespace obs
{

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already separated this element
    }
    if (!frames_.empty()) {
        if (frames_.back())
            os_ << ',';
        frames_.back() = true;
    }
}

void
JsonWriter::escape(const std::string &s)
{
    os_ << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\r':
            os_ << "\\r";
            break;
          case '\t':
            os_ << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *hex = "0123456789abcdef";
                os_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    frames_.push_back(false);
}

void
JsonWriter::endObject()
{
    frames_.pop_back();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    frames_.push_back(false);
}

void
JsonWriter::endArray()
{
    frames_.pop_back();
    os_ << ']';
}

void
JsonWriter::key(const std::string &k)
{
    separate();
    escape(k);
    os_ << ':';
    pendingKey_ = true;
}

void
JsonWriter::value(const std::string &s)
{
    separate();
    escape(s);
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(int v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

} // namespace obs
} // namespace canon
