#include "obs/hist.hh"

namespace canon
{
namespace obs
{

int
Histogram::bucketOf(std::uint64_t v)
{
    if (v == 0)
        return 0;
    int b = 1;
    while (v > 1 && b < kBuckets - 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

std::uint64_t
Histogram::bucketLo(int b)
{
    if (b <= 0)
        return 0;
    return std::uint64_t{1} << (b - 1);
}

std::string
Histogram::bucketLabel(int b)
{
    if (b <= 0)
        return "0";
    const std::uint64_t lo = bucketLo(b);
    if (b == kBuckets - 1)
        return std::to_string(lo) + "+";
    const std::uint64_t hi = (lo << 1) - 1;
    if (lo == hi)
        return std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(hi);
}

} // namespace obs
} // namespace canon
