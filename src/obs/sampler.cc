#include "obs/sampler.hh"

#include <map>
#include <utility>

#include "common/logging.hh"
#include "common/stats.hh"

namespace canon
{
namespace obs
{

namespace
{

/** Metrics summed fabric-wide into the "fabric" component. */
const char *const kFabricMetrics[] = {
    "busyCycles",     "macOps",       "stallCycles",
    "tagCompares",    "bufferSearches", "spadResidentSum",
    "spadCapCycles",  "instIssued",
};

/** Metrics additionally split out per top-level "orch*" child. */
const char *const kOrchMetrics[] = {
    "spadResidentSum",
    "spadCapCycles",
    "tagCompares",
    "stallCycles",
};

std::string
leafOf(const std::string &path)
{
    auto dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(dot + 1);
}

std::string
topOf(const std::string &path)
{
    auto dot = path.find('.');
    return dot == std::string::npos ? std::string() : path.substr(0, dot);
}

} // namespace

CycleSampler::CycleSampler(const StatGroup &stats, std::uint64_t every)
    : every_(every)
{
    panicIf(every_ == 0, "CycleSampler: cadence must be > 0");

    // (metric, component) -> summed counter sources. std::map keys the
    // probe order, so the series layout is independent of counter
    // registration order (visitCounters is itself lexicographic).
    std::map<std::pair<std::string, std::string>,
             std::vector<const Counter *>>
        probes;
    stats.visitCounters([&](const std::string &path, const Counter &c) {
        const std::string leaf = leafOf(path);
        for (const char *m : kFabricMetrics)
            if (leaf == m)
                probes[{leaf, "fabric"}].push_back(&c);
        const std::string top = topOf(path);
        if (top.rfind("orch", 0) == 0)
            for (const char *m : kOrchMetrics)
                if (leaf == m)
                    probes[{leaf, top}].push_back(&c);
    });

    probes_.reserve(probes.size());
    for (auto &[key, sources] : probes)
        probes_.push_back({key.first, key.second, std::move(sources)});
    points_.resize(probes_.size());
}

void
CycleSampler::capture()
{
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        std::uint64_t sum = 0;
        for (const Counter *c : probes_[i].sources)
            sum += c->value();
        points_[i].push_back({tick_, sum});
    }
    lastCaptured_ = tick_;
    captured_ = true;
}

void
CycleSampler::captureFinal()
{
    if (!captured_ || lastCaptured_ != tick_)
        capture();
}

SeriesSet
CycleSampler::take()
{
    SeriesSet out;
    out.series.reserve(probes_.size());
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        Series s;
        s.metric = probes_[i].metric;
        s.component = probes_[i].component;
        s.points = std::move(points_[i]);
        points_[i].clear();
        out.series.push_back(std::move(s));
    }
    return out;
}

} // namespace obs
} // namespace canon
