#include "obs/accounting.hh"

#include <utility>

#include "common/logging.hh"
#include "noc/inst_pipeline.hh"
#include "orch/orchestrator.hh"
#include "pe/pe.hh"

namespace canon
{
namespace obs
{

namespace
{

const char *const kCatNames[kCycleCatCount] = {
    "compute",
    "stall_upstream_empty",
    "stall_downstream_backpressure",
    "tag_search",
    "drain",
    "idle",
};

} // namespace

const char *
cycleCatName(int cat)
{
    if (cat < 0 || cat >= kCycleCatCount)
        return "?";
    return kCatNames[cat];
}

CycleAccountant::CycleAccountant(
    std::vector<const Orchestrator *> orchs,
    std::vector<const Pe *> pes,
    std::vector<const InstPipeline *> pipes,
    std::vector<const DataChan *> vert,
    std::vector<const DataChan *> horiz,
    std::vector<const MsgChannel *> msgs, std::uint64_t sample_every)
    : orchs_(std::move(orchs)), pes_(std::move(pes)),
      pipes_(std::move(pipes)), vert_(std::move(vert)),
      horiz_(std::move(horiz)), msgs_(std::move(msgs)),
      histEvery_(sample_every > 0 ? sample_every : 1),
      every_(sample_every)
{
    panicIf(orchs_.empty() && pes_.empty() && pipes_.empty(),
            "CycleAccountant: nothing to observe");
    accounts_.resize(orchs_.size() + pes_.size() + pipes_.size());
    prevOrchStall_.resize(orchs_.size(), 0);
    prevOrchInst_.resize(orchs_.size(), 0);
    prevOrchSearches_.resize(orchs_.size(), 0);
    prevOrchCompares_.resize(orchs_.size(), 0);
    prevPeBusy_.resize(pes_.size(), 0);
    histTagDepth_.resize(orchs_.size());
    histSearchLen_.resize(orchs_.size());
    if (every_ > 0)
        points_.resize(kCycleCatCount + 1);
}

void
CycleAccountant::classify(std::size_t comp, CycleCat cat)
{
    ++accounts_[comp][static_cast<std::size_t>(cat)];
}

void
CycleAccountant::tickCommit()
{
    // Exactly one category per component per cycle: the sum-to-cycles
    // invariant holds by construction.
    std::size_t comp = 0;
    for (std::size_t i = 0; i < orchs_.size(); ++i, ++comp) {
        const Orchestrator &o = *orchs_[i];
        const std::uint64_t stall = o.stallCyclesValue();
        const std::uint64_t inst = o.instIssuedValue();
        const std::uint64_t searches = o.buffer().searchCount();
        const std::uint64_t compares = o.buffer().compareCount();
        const std::uint64_t d_stall = stall - prevOrchStall_[i];
        const std::uint64_t d_inst = inst - prevOrchInst_[i];
        const std::uint64_t d_searches = searches - prevOrchSearches_[i];
        const std::uint64_t d_compares = compares - prevOrchCompares_[i];
        prevOrchStall_[i] = stall;
        prevOrchInst_[i] = inst;
        prevOrchSearches_[i] = searches;
        prevOrchCompares_[i] = compares;

        // Priority order resolves the (rare) overlaps: a done
        // orchestrator's predicates may still probe the buffer, and a
        // computing cycle usually probed the buffer to decide.
        if (o.done())
            classify(comp, CycleCat::Idle);
        else if (d_stall > 0)
            classify(comp, CycleCat::StallDownstreamBackpressure);
        else if (d_inst > 0)
            classify(comp, CycleCat::Compute);
        else if (d_searches > 0)
            classify(comp, CycleCat::TagSearch);
        else
            classify(comp, CycleCat::StallUpstreamEmpty);

        // Search length is a per-event measure, recorded on every
        // cycle that actually searched (mean compares per probe).
        if (d_searches > 0)
            histSearchLen_[i].record(d_compares / d_searches);
    }
    for (std::size_t i = 0; i < pes_.size(); ++i, ++comp) {
        const Pe &p = *pes_[i];
        const std::uint64_t busy = p.busyCyclesValue();
        const std::uint64_t d_busy = busy - prevPeBusy_[i];
        prevPeBusy_[i] = busy;
        const bool row_done = static_cast<std::size_t>(p.row()) <
                                  orchs_.size() &&
                              orchs_[static_cast<std::size_t>(
                                         p.row())]
                                  ->done();
        if (d_busy == 0)
            classify(comp, CycleCat::Idle);
        else if (row_done)
            classify(comp, CycleCat::Drain);
        else
            classify(comp, CycleCat::Compute);
    }
    for (std::size_t i = 0; i < pipes_.size(); ++i, ++comp) {
        const bool row_done =
            i < orchs_.size() && orchs_[i]->done();
        if (pipes_[i]->drained())
            classify(comp, CycleCat::Idle);
        else if (row_done)
            classify(comp, CycleCat::Drain);
        else
            classify(comp, CycleCat::Compute);
    }

    ++tick_;
    if (tick_ % histEvery_ == 0)
        captureHistograms();
    if (every_ > 0 && tick_ % every_ == 0)
        captureSeries();
}

void
CycleAccountant::captureHistograms()
{
    for (const DataChan *ch : vert_)
        histVert_.record(ch->size());
    for (const DataChan *ch : horiz_)
        histHoriz_.record(ch->size());
    for (const MsgChannel *m : msgs_)
        histMsg_.record(m->size());
    for (std::size_t i = 0; i < orchs_.size(); ++i)
        histTagDepth_[i].record(
            static_cast<std::uint64_t>(orchs_[i]->buffer().size()));
}

void
CycleAccountant::captureSeries()
{
    std::uint64_t accounted = 0;
    for (int c = 0; c < kCycleCatCount; ++c) {
        std::uint64_t sum = 0;
        for (const auto &acc : accounts_)
            sum += acc[static_cast<std::size_t>(c)];
        points_[static_cast<std::size_t>(c)].push_back({tick_, sum});
        accounted += sum;
    }
    points_[kCycleCatCount].push_back({tick_, accounted});
    lastCaptured_ = tick_;
    captured_ = true;
}

void
CycleAccountant::captureFinal()
{
    if (every_ == 0)
        return;
    if (!captured_ || lastCaptured_ != tick_)
        captureSeries();
}

AccountingSet
CycleAccountant::take() const
{
    AccountingSet out;
    out.cycles = tick_;
    out.components.reserve(accounts_.size());
    std::size_t comp = 0;
    for (const Orchestrator *o : orchs_) {
        ComponentAccount a;
        a.component = o->name();
        a.cycles = accounts_[comp++];
        out.components.push_back(std::move(a));
    }
    for (const Pe *p : pes_) {
        ComponentAccount a;
        a.component = "pe" + std::to_string(p->row()) + "_" +
                      std::to_string(p->col());
        a.cycles = accounts_[comp++];
        out.components.push_back(std::move(a));
    }
    for (std::size_t i = 0; i < pipes_.size(); ++i) {
        ComponentAccount a;
        a.component = "pipe" + std::to_string(i);
        a.cycles = accounts_[comp++];
        out.components.push_back(std::move(a));
    }

    auto hist = [&out](const char *metric, std::string component,
                       const Histogram &h) {
        out.histograms.push_back(
            {metric, std::move(component), h});
    };
    hist("occupancy", "vert", histVert_);
    hist("occupancy", "horiz", histHoriz_);
    hist("occupancy", "msg", histMsg_);
    for (std::size_t i = 0; i < orchs_.size(); ++i)
        hist("tagDepth", orchs_[i]->name(), histTagDepth_[i]);
    for (std::size_t i = 0; i < orchs_.size(); ++i)
        hist("searchLen", orchs_[i]->name(), histSearchLen_[i]);
    return out;
}

SeriesSet
CycleAccountant::takeSeries()
{
    SeriesSet out;
    if (every_ == 0)
        return out;
    out.series.reserve(points_.size());
    for (std::size_t c = 0; c < points_.size(); ++c) {
        Series s;
        s.metric = std::string("acct.") +
                   (c < kCycleCatCount
                        ? cycleCatName(static_cast<int>(c))
                        : "accounted");
        s.component = "fabric";
        s.points = std::move(points_[c]);
        points_[c].clear();
        out.series.push_back(std::move(s));
    }
    return out;
}

} // namespace obs
} // namespace canon
