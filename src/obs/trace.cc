#include "obs/trace.hh"

#include <ostream>

#include "obs/json.hh"

namespace canon
{
namespace obs
{

const char *const kTraceSchema = "canon-trace-1";

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEvent> &events)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const TraceEvent &e : events) {
        w.beginObject();
        w.kv("name", e.name);
        w.kv("ph", std::string(1, e.phase));
        if (!e.cat.empty())
            w.kv("cat", e.cat);
        w.kv("ts", e.ts);
        if (e.phase == 'X')
            w.kv("dur", e.dur);
        if (e.phase == 'i')
            w.kv("s", "t"); // thread-scoped instant
        w.kv("pid", e.pid);
        w.kv("tid", e.tid);
        if (!e.args.empty() || !e.sargs.empty()) {
            w.key("args");
            w.beginObject();
            for (const auto &[k, v] : e.sargs)
                w.kv(k, v);
            for (const auto &[k, v] : e.args)
                w.kv(k, v);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.key("otherData");
    w.beginObject();
    w.kv("schema", kTraceSchema);
    w.kv("timeModel", "1 simulated cycle = 1 virtual microsecond");
    w.endObject();
    w.kv("displayTimeUnit", "ms");
    w.endObject();
    os << '\n';
}

} // namespace obs
} // namespace canon
