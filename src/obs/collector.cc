#include "obs/collector.hh"

#include <utility>

#include "common/stats.hh"

namespace canon
{
namespace obs
{

namespace
{

thread_local Collector *tlsCollector = nullptr;

} // namespace

void
Collector::recordFabricRun(const StatGroup &stats, std::uint64_t cycles,
                           SeriesSet series, AccountingSet accounting)
{
    FabricRunObs run;
    run.cycles = cycles;
    run.series = std::move(series);
    if (obs_.options.wantFlatStats())
        run.flat = stats.flatten();
    run.accounting = std::move(accounting);
    obs_.runs.push_back(std::move(run));
}

std::shared_ptr<const ScenarioObs>
Collector::finish()
{
    return std::make_shared<const ScenarioObs>(std::move(obs_));
}

Collector *
current()
{
    return tlsCollector;
}

ScopedCollector::ScopedCollector(Collector &c) : prev_(tlsCollector)
{
    tlsCollector = &c;
}

ScopedCollector::~ScopedCollector()
{
    tlsCollector = prev_;
}

} // namespace obs
} // namespace canon
