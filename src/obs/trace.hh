/**
 * @file
 * Chrome trace-event (about://tracing, Perfetto UI) export.
 *
 * Events use the documented JSON array format: "X" complete spans,
 * "i" instants, "C" counter samples, and "M" thread-name metadata.
 * Timestamps are *virtual* microseconds -- 1 simulated cycle = 1 us on
 * a serialized timeline (scenario i starts where scenario i-1 ended)
 * -- so the trace bytes depend only on simulated behaviour, never on
 * wall-clock, worker count, or scheduling. Per track (pid, tid),
 * timestamps are non-decreasing; scripts/trace_check.py enforces both
 * properties in CI.
 */

#ifndef CANON_OBS_TRACE_HH
#define CANON_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace canon
{
namespace obs
{

/** The trace-format schema tag stamped into otherData.schema. */
extern const char *const kTraceSchema;

struct TraceEvent
{
    char phase = 'X';   //!< 'X' span, 'i' instant, 'C' counter, 'M' meta
    std::string name;
    std::string cat;    //!< category ("engine", "cache", "sim", ...)
    std::uint64_t ts = 0;
    std::uint64_t dur = 0; //!< 'X' only
    int pid = 0;
    int tid = 0;
    /** Integer args ('C' events carry their samples here). */
    std::vector<std::pair<std::string, std::uint64_t>> args;
    /** String args ('M' events carry "name" here). */
    std::vector<std::pair<std::string, std::string>> sargs;
};

/**
 * Write @p events as one Chrome trace JSON document, in the given
 * order (callers pre-sort; the writer adds nothing non-deterministic).
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events);

} // namespace obs
} // namespace canon

#endif // CANON_OBS_TRACE_HH
