#include "obs/host.hh"

#include <atomic>
#include <chrono>

namespace canon
{
namespace obs
{

namespace
{

std::atomic<std::uint64_t (*)()> testClock{nullptr};

} // namespace

std::uint64_t
hostNowUs()
{
    if (auto *fn = testClock.load(std::memory_order_relaxed))
        return fn();
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now.time_since_epoch())
            .count());
}

void
setHostClockForTest(std::uint64_t (*clock)())
{
    testClock.store(clock, std::memory_order_relaxed);
}

} // namespace obs
} // namespace canon
