/**
 * @file
 * The observability knobs every canon entry point shares. This header
 * is a leaf on purpose: engine::CommonFlags embeds an ObsOptions, so
 * it must not pull in the stats framework, the sampler, or anything
 * above the common layer.
 *
 * All knobs are instrumentation-only: they never change what is
 * simulated, what is cached (they are not part of the scenario cache
 * key), or what the stats tables render. With every knob off, the
 * instrumented paths reduce to a single branch per scenario/run -- the
 * zero-cost-when-off guarantee the perf-trajectory gate enforces.
 */

#ifndef CANON_OBS_OPTIONS_HH
#define CANON_OBS_OPTIONS_HH

#include <cstdint>
#include <string>

namespace canon
{
namespace obs
{

struct ObsOptions
{
    /**
     * Cycle-resolved sampling cadence: capture the tracked StatGroup
     * counters every N simulated cycles (plus one final sample at run
     * end). 0 disables the sampler entirely -- no schedule partition
     * is registered, so a disabled sampler costs nothing per cycle.
     */
    std::uint64_t sampleEvery = 0;

    /** Sampled time-series CSV path (requires sampleEvery > 0). */
    std::string seriesOut;

    /** Chrome trace-event (about://tracing / Perfetto) JSON path. */
    std::string traceOut;

    /** Machine-readable per-scenario stats dump path. */
    std::string statsJsonOut;

    /**
     * Per-component cycle accounting (--cycle-accounting): classify
     * every ticked cycle of every Pe/pipeline/orchestrator into the
     * stall-cause taxonomy and record occupancy histograms. Renders a
     * breakdown table and adds accounting sections to --stats-json /
     * series metrics and trace counter tracks when those outputs are
     * also requested. Off: no accountant partition is registered.
     */
    bool cycleAccounting = false;

    /**
     * Host-side wall-clock phase timers (--host-timers): per-scenario
     * queue-wait / cache-probe / sim / encode / store durations,
     * reported through --stats-json. Wall-clock readings are
     * non-deterministic, so this is the one obs output excluded from
     * the byte-identity contract.
     */
    bool hostTimers = false;

    bool sampling() const { return sampleEvery > 0; }

    /** The flat per-run stats view is only captured when dumped. */
    bool wantFlatStats() const { return !statsJsonOut.empty(); }

    /** Any observability output requested at all. */
    bool
    enabled() const
    {
        return sampleEvery > 0 || !seriesOut.empty() ||
               !traceOut.empty() || !statsJsonOut.empty() ||
               cycleAccounting || hostTimers;
    }
};

} // namespace obs
} // namespace canon

#endif // CANON_OBS_OPTIONS_HH
