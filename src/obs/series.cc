#include "obs/series.hh"

#include <ostream>

namespace canon
{
namespace obs
{

const char *const kSeriesCsvHeader =
    "scenario,pass,metric,component,cycle,value";

void
writeSeriesCsv(std::ostream &os, std::size_t scenario, std::size_t pass,
               const SeriesSet &set)
{
    for (const Series &s : set.series)
        for (const SeriesPoint &p : s.points)
            os << scenario << ',' << pass << ',' << s.metric << ','
               << s.component << ',' << p.cycle << ',' << p.value
               << '\n';
}

} // namespace obs
} // namespace canon
