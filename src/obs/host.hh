/**
 * @file
 * Host-side (wall-clock) phase telemetry for one scenario job: where
 * the *engine* spent real time, as opposed to where the simulated
 * fabric spent cycles.
 *
 * Wall-clock readings are inherently non-deterministic, so host
 * timers sit behind their own flag (--host-timers) and are the one
 * obs output excluded from the byte-identity contract: CI's
 * byte-identity passes never enable them. Tests that want
 * deterministic values install a virtual clock with
 * setHostClockForTest().
 *
 * All fields are integer microseconds -- no floating point anywhere
 * near an emitted artifact.
 */

#ifndef CANON_OBS_HOST_HH
#define CANON_OBS_HOST_HH

#include <cstdint>

namespace canon
{
namespace obs
{

/** Per-scenario host phase durations, integer microseconds. */
struct HostPhaseTimes
{
    /** True once the runner measured this scenario. */
    bool measured = false;

    /** Pool-entry to job-start: time the job waited for a worker. */
    std::uint64_t queueWaitUs = 0;

    /** Cache lookup + payload decode. */
    std::uint64_t cacheProbeUs = 0;

    /** The simulation itself (the scenario-case function). */
    std::uint64_t simUs = 0;

    /** Encoding the computed result for the cache. */
    std::uint64_t encodeUs = 0;

    /** Persisting the encoded payload (atomic temp+rename store). */
    std::uint64_t cacheStoreUs = 0;
};

/**
 * Monotonic host time in microseconds: the injected test clock when
 * one is installed, otherwise std::chrono::steady_clock.
 */
std::uint64_t hostNowUs();

/**
 * Install a virtual clock for deterministic tests (nullptr restores
 * the real clock). Not thread-safe against concurrent hostNowUs()
 * callers: install before starting a pool, restore after it joins.
 */
void setHostClockForTest(std::uint64_t (*clock)());

} // namespace obs
} // namespace canon

#endif // CANON_OBS_HOST_HH
