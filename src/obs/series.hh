/**
 * @file
 * Per-component time series: the sampled value of one counter over
 * simulated time. The sampler produces a SeriesSet per fabric run;
 * the engine report layer concatenates them (scenario, pass) into the
 * one long-form CSV the summarizer scripts consume.
 *
 * Values are the *cumulative* counter readings at each sample cycle,
 * never deltas: cumulative series are trivially order-independent
 * (byte-identical across worker counts and registration shuffles) and
 * the consumer can difference adjacent points to recover rates.
 */

#ifndef CANON_OBS_SERIES_HH
#define CANON_OBS_SERIES_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace canon
{
namespace obs
{

/** One sample: the cumulative counter value at a simulated cycle. */
struct SeriesPoint
{
    std::uint64_t cycle = 0;
    std::uint64_t value = 0;

    friend bool
    operator==(const SeriesPoint &a, const SeriesPoint &b)
    {
        return a.cycle == b.cycle && a.value == b.value;
    }
};

/** One (metric, component) series over one fabric run. */
struct Series
{
    std::string metric;    //!< counter leaf name, e.g. "tagCompares"
    std::string component; //!< "fabric" (whole tree) or "orch3", ...
    std::vector<SeriesPoint> points;

    friend bool
    operator==(const Series &a, const Series &b)
    {
        return a.metric == b.metric && a.component == b.component &&
               a.points == b.points;
    }
};

/** Every series of one fabric run, ordered by (metric, component). */
struct SeriesSet
{
    std::vector<Series> series;

    bool empty() const { return series.empty(); }

    friend bool
    operator==(const SeriesSet &a, const SeriesSet &b)
    {
        return a.series == b.series;
    }
};

/** The long-form CSV header: scenario,pass,metric,component,cycle,value. */
extern const char *const kSeriesCsvHeader;

/**
 * Append @p set as long-form CSV rows labelled with @p scenario (the
 * global expansion index) and @p pass (the fabric-run ordinal within
 * the scenario). Emission order is the set's (metric, component)
 * order, points in cycle order -- fully deterministic.
 */
void writeSeriesCsv(std::ostream &os, std::size_t scenario,
                    std::size_t pass, const SeriesSet &set);

} // namespace obs
} // namespace canon

#endif // CANON_OBS_SERIES_HH
