/**
 * @file
 * Per-component cycle accounting: every ticked cycle of every
 * Pe / InstPipeline / Orchestrator classified into an exhaustive,
 * mutually exclusive stall-cause taxonomy, plus occupancy histograms
 * of the channels and tag buffers.
 *
 * The hard invariant: for every component, the six category counts
 * sum *exactly* to the cycles the accountant observed -- enforced by
 * construction (each commit pass assigns exactly one category per
 * component) and asserted by tests and the CI obs gate.
 *
 * Like the CycleSampler, the accountant is a commit-only typed
 * schedule partition that CanonFabric::run() constructs and registers
 * only when the observing collector asked for cycle accounting
 * (--cycle-accounting). Disabled accounting is structural: no
 * partition exists, the cycle loop is bit-identical to an unobserved
 * fabric's. Classification reads post-commit component state and
 * compute-phase counter deltas, both of which are final by any commit
 * pass, so the recorded categories -- and every artifact derived from
 * them -- are byte-identical across --jobs values and
 * registration-shuffle seeds.
 *
 * Counts accumulate for the life of the fabric (take() snapshots
 * without resetting), mirroring the flat-stats semantics: for
 * workloads that reuse one fabric across passes, later runs include
 * earlier runs' cycles. The invariant is against AccountingSet::cycles
 * (the accountant's own observed-cycle count), which equals the run's
 * elapsed cycles for the common one-run-per-fabric scenarios.
 */

#ifndef CANON_OBS_ACCOUNTING_HH
#define CANON_OBS_ACCOUNTING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/hist.hh"
#include "obs/series.hh"

namespace canon
{

class Pe;
class Orchestrator;
class InstPipeline;
class MsgChannel;
struct Vec4;
template <typename T> class ChannelFifo;

namespace obs
{

/**
 * The per-cycle classification. Exhaustive and mutually exclusive:
 * every observed component-cycle lands in exactly one category.
 */
enum class CycleCat : int
{
    Compute = 0,                 //!< useful work issued/executed
    StallUpstreamEmpty,          //!< waiting on inputs (starved)
    StallDownstreamBackpressure, //!< output channel full (stalled)
    TagSearch,                   //!< associative tag-buffer probing
    Drain,                       //!< finishing in-flight work after
                                 //!< the row's orchestrator is done
    Idle,                        //!< nothing to do
};

inline constexpr int kCycleCatCount = 6;

/** Stable snake_case name, used in stats JSON and series metrics. */
const char *cycleCatName(int cat);

/** One component's category totals. */
struct ComponentAccount
{
    std::string component;
    std::array<std::uint64_t, kCycleCatCount> cycles{};

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t c : cycles)
            t += c;
        return t;
    }

    friend bool
    operator==(const ComponentAccount &a, const ComponentAccount &b)
    {
        return a.component == b.component && a.cycles == b.cycles;
    }
};

/** A frozen accounting snapshot of one fabric (one run record). */
struct AccountingSet
{
    /** Cycles the accountant observed (== every component's total). */
    std::uint64_t cycles = 0;
    /**
     * Fixed deterministic order: orchestrators (orch0...), PEs in
     * row-major order (pe0_0...), instruction pipelines (pipe0...).
     */
    std::vector<ComponentAccount> components;
    /** Occupancy / depth / search-length distributions. */
    std::vector<HistogramOut> histograms;

    bool empty() const { return components.empty(); }

    friend bool
    operator==(const AccountingSet &a, const AccountingSet &b)
    {
        return a.cycles == b.cycles && a.components == b.components &&
               a.histograms == b.histograms;
    }
};

class CycleAccountant final
{
  public:
    static constexpr bool kHasTickCompute = false;

    using DataChan = ChannelFifo<Vec4>;

    /**
     * Observe the given components. Vectors index components in the
     * AccountingSet order above; a PE's row() (and a pipeline's index,
     * one pipeline per row) selects the orchestrator whose done()
     * drives the drain classification.
     *
     * @p sample_every mirrors the CycleSampler cadence: when > 0 the
     * accountant additionally emits cumulative rollup series
     * ("acct.*", component "fabric") captured on exactly the sampler's
     * tick/captureFinal schedule, so the trace writer's
     * equal-points-per-series assumption holds; histograms are then
     * sampled at the same cadence. When 0 (accounting without
     * sampling) no series are produced and histograms capture every
     * cycle.
     */
    CycleAccountant(std::vector<const Orchestrator *> orchs,
                    std::vector<const Pe *> pes,
                    std::vector<const InstPipeline *> pipes,
                    std::vector<const DataChan *> vert,
                    std::vector<const DataChan *> horiz,
                    std::vector<const MsgChannel *> msgs,
                    std::uint64_t sample_every);

    void tickCompute() {}
    void tickCommit();

    /** Record the final partial-interval series sample (see sampler). */
    void captureFinal();

    /** Cycles observed since registration. */
    std::uint64_t tick() const { return tick_; }

    /** Snapshot the cumulative accounts (the accountant keeps going). */
    AccountingSet take() const;

    /** Move the accumulated rollup series out (empty when cadence 0). */
    SeriesSet takeSeries();

  private:
    void classify(std::size_t comp, CycleCat cat);
    void captureHistograms();
    void captureSeries();

    std::vector<const Orchestrator *> orchs_;
    std::vector<const Pe *> pes_;
    std::vector<const InstPipeline *> pipes_;
    std::vector<const DataChan *> vert_;
    std::vector<const DataChan *> horiz_;
    std::vector<const MsgChannel *> msgs_;

    std::uint64_t tick_ = 0;

    /** accounts_[component][category], AccountingSet order. */
    std::vector<std::array<std::uint64_t, kCycleCatCount>> accounts_;

    // Previous-cycle counter values (per-cycle deltas drive the
    // classification and the search-length histogram).
    std::vector<std::uint64_t> prevOrchStall_;
    std::vector<std::uint64_t> prevOrchInst_;
    std::vector<std::uint64_t> prevOrchSearches_;
    std::vector<std::uint64_t> prevOrchCompares_;
    std::vector<std::uint64_t> prevPeBusy_;

    // Histograms: channel-class occupancy + per-orch distributions.
    Histogram histVert_;
    Histogram histHoriz_;
    Histogram histMsg_;
    std::vector<Histogram> histTagDepth_;  //!< per orchestrator
    std::vector<Histogram> histSearchLen_; //!< per orchestrator
    std::uint64_t histEvery_;

    // Rollup series state (cadence > 0 only), mirroring CycleSampler.
    std::uint64_t every_;
    std::uint64_t lastCaptured_ = 0;
    bool captured_ = false;
    /** points_[kCycleCatCount] is the "acct.accounted" series. */
    std::vector<std::vector<SeriesPoint>> points_;
};

} // namespace obs
} // namespace canon

#endif // CANON_OBS_ACCOUNTING_HH
