#include "runner/sweep.hh"

namespace canon
{
namespace runner
{

namespace
{

std::vector<std::string>
splitCsv(const std::string &csv)
{
    // Keeps empty segments ("0.5,,0.7", trailing comma) so they hit
    // per-value validation instead of silently shrinking the grid.
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        auto comma = csv.find(',', start);
        out.push_back(csv.substr(start, comma - start));
        if (comma == std::string::npos)
            return out;
        start = comma + 1;
    }
}

} // namespace

std::string
SweepSpec::addAxis(const std::string &key, const std::string &values)
{
    for (const auto &axis : axes_)
        if (axis.key == key)
            return "duplicate sweep axis '" + key + "'";

    // Catch "--sweep --rows=..." before the '--' prefix doubles up
    // in the unknown-option message below.
    if (!key.empty() && key[0] == '-') {
        const auto bare = key.substr(key.find_first_not_of('-'));
        return "sweep axis '" + key + "' should not start with '-'"
               " (write --sweep " + bare + "=...)";
    }

    // Real CLI flags that are nevertheless outside the scenario
    // grammar get a targeted message, not "unknown option".
    for (const char *fixed : {"arch", "csv", "sweep", "jobs", "shard",
                              "cache", "cache-dir", "help", "list"})
        if (key == fixed)
            return "sweep axis '" + key + "' is not sweepable (only"
                   " workload, model, shape, and fabric options are)";

    Axis axis;
    axis.key = key;
    axis.values = splitCsv(values);
    if (axis.values.empty())
        return "sweep axis '" + key + "' has no values";

    // Validate every value now, against a scratch copy, with the
    // exact grammar the CLI applies; expansion can then never fail.
    for (const auto &v : axis.values) {
        cli::Options scratch;
        std::string err = cli::applyScenarioOption(scratch, key, v);
        if (!err.empty())
            return "sweep axis '" + key + "': " + err;
    }

    axes_.push_back(std::move(axis));
    return {};
}

bool
SweepSpec::hasAxis(const std::string &key) const
{
    for (const auto &axis : axes_)
        if (axis.key == key)
            return true;
    return false;
}

bool
SweepSpec::axisHasValue(const std::string &key,
                        const std::string &value) const
{
    for (const auto &axis : axes_)
        if (axis.key == key)
            for (const auto &v : axis.values)
                if (v == value)
                    return true;
    return false;
}

std::size_t
SweepSpec::jobCount() const
{
    std::size_t n = 1;
    for (const auto &axis : axes_)
        n *= axis.values.size();
    return n;
}

std::vector<SweepJob>
SweepSpec::expand(const cli::Options &base) const
{
    std::vector<SweepJob> jobs;
    jobs.reserve(jobCount());

    // Odometer over the axis value lists: the last axis is the least
    // significant digit, so it varies fastest.
    std::vector<std::size_t> digit(axes_.size(), 0);
    for (;;) {
        SweepJob job;
        job.index = jobs.size();
        job.options = base;
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const auto &axis = axes_[a];
            const auto &value = axis.values[digit[a]];
            // Validated by addAxis; cannot fail here.
            cli::applyScenarioOption(job.options, axis.key, value);
            if (!job.point.empty())
                job.point += " ";
            job.point += axis.key + "=" + value;
        }
        jobs.push_back(std::move(job));

        std::size_t a = axes_.size();
        while (a > 0) {
            --a;
            if (++digit[a] < axes_[a].values.size())
                break;
            digit[a] = 0;
            if (a == 0)
                return jobs;
        }
        if (axes_.empty())
            return jobs;
    }
}

std::string
makeSweepSpec(
    const std::vector<std::pair<std::string, std::string>> &axes,
    SweepSpec &out)
{
    for (const auto &[key, values] : axes) {
        std::string err = out.addAxis(key, values);
        if (!err.empty())
            return err;
    }
    return {};
}

} // namespace runner
} // namespace canon
