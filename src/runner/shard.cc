#include "runner/shard.hh"

#include <charconv>

namespace canon
{
namespace runner
{

namespace
{

bool
parseInt(const std::string &s, int &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

} // namespace

std::string
parseShard(const std::string &text, Shard &out)
{
    const std::string expects =
        "expects i/n with 0 <= i < n <= " + std::to_string(kMaxShards);

    const auto slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        return "shard '" + text + "' " + expects;

    int index = 0, count = 0;
    if (!parseInt(text.substr(0, slash), index) ||
        !parseInt(text.substr(slash + 1), count))
        return "shard '" + text + "' " + expects;
    if (count < 1 || count > kMaxShards || index < 0 ||
        index >= count)
        return "shard '" + text + "' " + expects;

    out.index = index;
    out.count = count;
    return {};
}

std::pair<std::size_t, std::size_t>
shardRange(const Shard &shard, std::size_t total)
{
    if (shard.whole())
        return {0, total};
    const auto i = static_cast<std::size_t>(shard.index);
    const auto n = static_cast<std::size_t>(shard.count);
    return {total * i / n, total * (i + 1) / n};
}

} // namespace runner
} // namespace canon
