/**
 * @file
 * Cooperative cancellation for pool runs.
 *
 * A CancelToken is a one-way latch shared between a submitter (who
 * may cancel()) and the worker pool (which polls cancelled() between
 * scenario jobs). Cancellation is cooperative and job-granular: a
 * scenario that has already started always runs to completion -- the
 * simulator has no preemption points -- but every job the pool has
 * not yet started is skipped and lands in the result list as a
 * failed ScenarioResult carrying kCancelledError at its expansion
 * index. Skipped jobs never touch the result cache (no probe, no
 * miss count, no store), so a cancelled sweep resumes exactly where
 * it stopped on the next submission.
 *
 * Thread-safety: cancel() and cancelled() may race freely from any
 * thread; the latch is a single relaxed atomic (workers only need to
 * observe the flag eventually -- there is no data ordered after it).
 */

#ifndef CANON_RUNNER_CANCEL_HH
#define CANON_RUNNER_CANCEL_HH

#include <atomic>

namespace canon
{
namespace runner
{

/** Error recorded on every job skipped by a cancelled run. */
inline constexpr const char *kCancelledError =
    "cancelled before execution";

class CancelToken
{
  public:
    CancelToken() = default;

    // The latch is shared by address; copying one would silently
    // split the submitter's flag from the pool's.
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Latch the token; idempotent, never blocks. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace runner
} // namespace canon

#endif // CANON_RUNNER_CANCEL_HH
