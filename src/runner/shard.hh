/**
 * @file
 * Process-level splitting of an expanded job list: `--shard i/n`
 * assigns each process one contiguous slice of the jobs so a grid can
 * fan out across machines, not just across one host's threads.
 *
 * Ownership and ordering guarantees:
 *  - Shards partition [0, total): the union of all n slices is the
 *    full job list and the slices are pairwise disjoint, so every job
 *    runs exactly once across the shard set.
 *  - Slices are contiguous and follow job-expansion order, so
 *    concatenating per-shard output in shard order reproduces the
 *    serial output byte for byte (the CSV header is emitted by shard
 *    0 only).
 *  - Slice sizes differ by at most one job; when total < n some
 *    shards own the empty slice, which is legal and yields empty
 *    output.
 *
 * The type is a plain value with no dependencies on the CLI layer so
 * both canonsim (src/cli) and the figure benches (bench/) can share
 * it.
 */

#ifndef CANON_RUNNER_SHARD_HH
#define CANON_RUNNER_SHARD_HH

#include <cstddef>
#include <string>
#include <utility>

namespace canon
{
namespace runner
{

/** Hard cap on the shard count; far beyond any realistic CI fan-out. */
inline constexpr int kMaxShards = 4096;

/** One process's share of a job list. The default is the whole list. */
struct Shard
{
    int index = 0; //!< this process's slice, in [0, count)
    int count = 1; //!< total number of slices; 1 means no sharding

    /** True when this shard owns every job (the degenerate 0/1). */
    bool whole() const { return count <= 1; }

    /** The "i/n" spelling, for labels and error messages. */
    std::string label() const
    {
        return std::to_string(index) + "/" + std::to_string(count);
    }
};

/**
 * Parse the "i/n" spelling (e.g. "0/4"). Requires 0 <= i < n and
 * 1 <= n <= kMaxShards. Returns an empty string on success, otherwise
 * the error message; @p out is only written on success.
 */
std::string parseShard(const std::string &text, Shard &out);

/**
 * The half-open job-index range [first, second) owned by @p shard in
 * a list of @p total jobs: [total*i/n, total*(i+1)/n). Evaluating it
 * for every i covers [0, total) exactly once, in order.
 */
std::pair<std::size_t, std::size_t> shardRange(const Shard &shard,
                                               std::size_t total);

} // namespace runner
} // namespace canon

#endif // CANON_RUNNER_SHARD_HH
