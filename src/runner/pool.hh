/**
 * @file
 * Worker-pool execution of independent jobs.
 *
 * The pool is three layers, each built on the one below:
 *
 *  - forEach(count, task): the type-erased core. Workers pull job
 *    indices from a shared atomic counter, so the pool never
 *    partitions work statically (one slow job cannot strand a whole
 *    stripe behind it). @p task must not throw; wrap it if it can.
 *  - map<R>(count, fn): runs fn(i) for every index and collects the
 *    returned values at their job index. An fn that throws fails the
 *    whole map with the lowest-indexed error after every job has
 *    been attempted.
 *  - run(jobs, fn): the canonsim scenario adapter. A scenario that
 *    throws (or yields nothing) is captured as a failed
 *    ScenarioResult; the remaining scenarios still run.
 *
 * Cached execution: run() and mapCached() accept an optional
 * cache::ResultStore. When present, each job's ScenarioKey is looked
 * up before simulating -- a hit skips the job entirely (this is what
 * makes a warm-cache rerun execute zero simulation jobs and an
 * interrupted sweep resume from its cache directory), a miss runs
 * the job and stores the result per the store's mode. Hit/miss/store
 * counts accumulate in the store's atomic counters. Failed scenarios
 * are never stored.
 *
 * Thread-safety and ordering contract (all entry points):
 *  - @p fn / @p task is called concurrently from up to workers()
 *    threads, each call with a distinct job index; it must not touch
 *    shared mutable state without its own synchronization.
 *  - Each result lands at its job's index, which makes the output
 *    ordering -- and therefore any rendered table or CSV --
 *    deterministic and independent of thread count and scheduling.
 *  - The pool itself is stateless across calls; a const ScenarioPool
 *    may be shared freely.
 */

#ifndef CANON_RUNNER_POOL_HH
#define CANON_RUNNER_POOL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/store.hh"
#include "obs/collector.hh"
#include "runner/cancel.hh"
#include "runner/sweep.hh"
#include "workloads/suite.hh"

namespace canon
{
namespace runner
{

/** Error recorded when a scenario yields no profile at all. */
inline constexpr const char *kNoArchError =
    "no requested architecture can execute this scenario";

/** Outcome of one sweep job: per-arch profiles, or an error. */
struct ScenarioResult
{
    SweepJob job;
    CaseResult cases;
    std::string error; //!< nonempty when the scenario failed

    /**
     * How the result cache treated this job: satisfied from the
     * store (cacheHit), or computed and written back (cacheStored).
     * Both false for uncached runs, failures, and cancelled jobs.
     * Per-job attribution is what lets a ResultSet report its own
     * hit/miss/store delta even when many requests share one
     * engine's store counters (see ResultSet::cacheStatsLine).
     */
    bool cacheHit = false;
    bool cacheStored = false;

    /** True when the job was skipped by a cancelled run. */
    bool cancelled() const { return error == kCancelledError; }

    /**
     * Observations gathered while this scenario executed; null when
     * the job's obs options were all off. Cache-hit scenarios carry
     * their cache events but no fabric runs (nothing simulated).
     */
    std::shared_ptr<const obs::ScenarioObs> obs;
};

class ScenarioPool
{
  public:
    /** @p workers is clamped to [1, jobs] at run time. */
    explicit ScenarioPool(int workers) : workers_(workers) {}

    int workers() const { return workers_; }

    /**
     * Run @p task for every index in [0, count), spread across the
     * worker threads. @p task must not throw: this is the primitive
     * the error-capturing entry points below are built on.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &task) const;

    /**
     * Run fn(i) for every index in [0, count) and collect the
     * returned values in index order. If any call throws, every
     * other job still runs, then the error of the lowest-indexed
     * failed job is rethrown as std::runtime_error.
     */
    template <typename R>
    std::vector<R> map(std::size_t count,
                       const std::function<R(std::size_t)> &fn) const
    {
        std::vector<R> results(count);
        std::vector<std::string> errors(count);
        // Failure is tracked separately from the message so an
        // exception with an empty what() still fails the map.
        std::vector<char> job_failed(count, 0);
        std::atomic<bool> any_failed{false};
        forEach(count, [&](std::size_t i) {
            try {
                results[i] = fn(i);
            } catch (const std::exception &e) {
                errors[i] = e.what();
                job_failed[i] = 1;
                any_failed.store(true, std::memory_order_relaxed);
            } catch (...) {
                errors[i] = "unknown exception";
                job_failed[i] = 1;
                any_failed.store(true, std::memory_order_relaxed);
            }
        });
        if (any_failed.load())
            for (std::size_t i = 0; i < count; ++i)
                if (job_failed[i])
                    throw std::runtime_error(
                        "job " + std::to_string(i) + ": " + errors[i]);
        return results;
    }

    /**
     * Run every job through @p fn (a CaseResult producer, typically
     * cli::runCases) and collect the outcomes in job-index order.
     * A job that throws FatalError/PanicError (or any std::exception)
     * is captured as a failed ScenarioResult; the remaining jobs
     * still run.
     *
     * With a non-null @p store, each job's cache::scenarioKey is
     * consulted first (per the store's mode): a decodable hit
     * becomes the result without simulating, anything else runs and
     * -- when writes are enabled and the scenario succeeded -- is
     * stored.
     *
     * With a non-null @p onResult, every finished result is
     * additionally streamed in job-index order: the callback fires
     * for job i as soon as jobs 0..i have all completed (so delivery
     * order is deterministic even though execution is not). Calls
     * are serialized under an internal lock but run on worker
     * threads concurrently with later jobs -- the callback must not
     * block for long and must not re-enter the pool. If the callback
     * throws, delivery stops, every job still runs to completion,
     * and the first exception rethrows on the caller's thread after
     * the workers have joined (it never escapes a worker thread).
     *
     * With a non-null @p cancel, the token is polled before each job
     * starts: once cancelled, every not-yet-started job is skipped
     * and recorded as a failed result carrying kCancelledError
     * (in-flight jobs finish normally; skipped jobs never touch the
     * store). Delivery order and result indexing are unchanged.
     */
    std::vector<ScenarioResult>
    run(const std::vector<SweepJob> &jobs,
        const std::function<CaseResult(const cli::Options &)> &fn,
        const cache::ResultStore *store = nullptr,
        const std::function<void(const ScenarioResult &)> &onResult =
            {},
        const CancelToken *cancel = nullptr) const;

    /**
     * Cache-aware map over opaque payload strings: for every index,
     * return the stored payload under keyOf(i) when the store has
     * one, otherwise compute(i) (storing the result per the store's
     * mode). With a null @p store this is map<std::string> over
     * @p compute. Exceptions follow the map() contract: every other
     * index still runs, then the lowest-indexed error is rethrown.
     * The payload round-trips bit-exactly, so a caller that renders
     * from the returned payloads is byte-identical warm or cold.
     */
    std::vector<std::string> mapCached(
        std::size_t count,
        const std::function<cache::ScenarioKey(std::size_t)> &keyOf,
        const std::function<std::string(std::size_t)> &compute,
        const cache::ResultStore *store) const;

  private:
    int workers_;
};

} // namespace runner
} // namespace canon

#endif // CANON_RUNNER_POOL_HH
