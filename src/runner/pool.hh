/**
 * @file
 * Worker-pool execution of sweep jobs.
 *
 * Workers pull job indices from a shared atomic counter, so the pool
 * never partitions work statically (one slow scenario cannot strand
 * a whole stripe behind it). Each result lands at its job's index,
 * which makes the output ordering -- and therefore the rendered
 * table and CSV -- deterministic and independent of thread count and
 * scheduling.
 */

#ifndef CANON_RUNNER_POOL_HH
#define CANON_RUNNER_POOL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "runner/sweep.hh"
#include "workloads/suite.hh"

namespace canon
{
namespace runner
{

/** Error recorded when a scenario yields no profile at all. */
inline constexpr const char *kNoArchError =
    "no requested architecture can execute this scenario";

/** Outcome of one sweep job: per-arch profiles, or an error. */
struct ScenarioResult
{
    SweepJob job;
    CaseResult cases;
    std::string error; //!< nonempty when the scenario failed
};

class ScenarioPool
{
  public:
    /** @p workers is clamped to [1, jobs] at run time. */
    explicit ScenarioPool(int workers) : workers_(workers) {}

    int workers() const { return workers_; }

    /**
     * Run every job through @p fn (a CaseResult producer, typically
     * cli::runCases) and collect the outcomes in job-index order.
     * A job that throws FatalError/PanicError (or any std::exception)
     * is captured as a failed ScenarioResult; the remaining jobs
     * still run.
     */
    std::vector<ScenarioResult>
    run(const std::vector<SweepJob> &jobs,
        const std::function<CaseResult(const cli::Options &)> &fn)
        const;

  private:
    int workers_;
};

} // namespace runner
} // namespace canon

#endif // CANON_RUNNER_POOL_HH
