#include "runner/pool.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>

#include "cache/key.hh"
#include "cache/payload.hh"
#include "obs/host.hh"

namespace canon
{
namespace runner
{

void
ScenarioPool::forEach(
    std::size_t count,
    const std::function<void(std::size_t)> &task) const
{
    if (count == 0)
        return;

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            task(i);
        }
    };

    const int n = std::clamp(
        workers_, 1,
        static_cast<int>(std::min<std::size_t>(count, 256)));
    if (n == 1) {
        // Degenerate pool: run inline, no thread spawn.
        worker();
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
}

std::vector<ScenarioResult>
ScenarioPool::run(
    const std::vector<SweepJob> &jobs,
    const std::function<CaseResult(const cli::Options &)> &fn,
    const cache::ResultStore *store,
    const std::function<void(const ScenarioResult &)> &onResult,
    const CancelToken *cancel) const
{
    std::vector<ScenarioResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        results[i].job = jobs[i];

    // Ordered streaming state: finished jobs are held back until
    // every lower-indexed job has finished, then released in one
    // in-order burst under the lock. A callback that throws must not
    // escape a worker thread (std::terminate); the first exception
    // is latched, delivery stops, and it rethrows on the caller's
    // thread after the pool has joined.
    std::mutex emit_mutex;
    std::vector<char> finished(jobs.size(), 0);
    std::size_t next_emit = 0;
    std::exception_ptr emit_error;
    auto emitReady = [&](std::size_t i) {
        if (!onResult)
            return;
        std::lock_guard<std::mutex> lock(emit_mutex);
        finished[i] = 1;
        while (!emit_error && next_emit < results.size() &&
               finished[next_emit]) {
            try {
                onResult(results[next_emit]);
            } catch (...) {
                emit_error = std::current_exception();
            }
            ++next_emit;
        }
    };

    // Host phase timers (--host-timers) reference the pool's entry
    // time for the queue-wait measure. One clock read, taken only
    // when some job actually asked for host telemetry.
    std::uint64_t pool_t0 = 0;
    for (const auto &j : jobs)
        if (j.options.common.obs.hostTimers) {
            pool_t0 = obs::hostNowUs();
            break;
        }

    forEach(jobs.size(), [&](std::size_t i) {
        ScenarioResult &r = results[i];

        // Cooperative cancel, polled once per job before any work:
        // a cancelled run skips everything it has not started --
        // including the cache probe, so the store's counters never
        // see skipped jobs -- but still lands a typed failure at the
        // job's index to keep the expansion-order contract intact.
        if (cancel && cancel->cancelled()) {
            r.error = kCancelledError;
            emitReady(i);
            return;
        }

        // Observe this job when asked: the collector rides the worker
        // thread (obs::current()) so the fabric and cache layers can
        // report without plumbing. With obs off this is one branch.
        const obs::ObsOptions &obs_opt = jobs[i].options.common.obs;
        std::optional<obs::Collector> col;
        std::optional<obs::ScopedCollector> scope;
        if (obs_opt.enabled()) {
            col.emplace(obs_opt);
            scope.emplace(*col);
        }

        const bool timing = obs_opt.hostTimers;
        obs::HostPhaseTimes host;
        if (timing) {
            host.measured = true;
            host.queueWaitUs = obs::hostNowUs() - pool_t0;
        }

        auto seal = [&] {
            if (!col)
                return;
            if (timing)
                col->recordHostTimes(host);
            scope.reset();
            r.obs = col->finish();
        };

        cache::ScenarioKey key;
        if (store)
            key = cache::scenarioKey(jobs[i].options);
        if (store && store->readsEnabled()) {
            if (col)
                col->recordCacheEvent(obs::CacheEventKind::Probe);
            const std::uint64_t t0 = timing ? obs::hostNowUs() : 0;
            bool hit = false;
            if (auto payload = store->lookup(key)) {
                // An undecodable or empty entry (external corruption;
                // torn files cannot happen) falls through to a
                // recompute instead of failing the scenario.
                if (cache::decodeCaseResult(*payload, r.cases) &&
                    !r.cases.empty())
                    hit = true;
                else
                    r.cases.clear();
            }
            if (timing)
                host.cacheProbeUs = obs::hostNowUs() - t0;
            if (hit) {
                store->recordHit();
                r.cacheHit = true;
                if (col)
                    col->recordCacheEvent(obs::CacheEventKind::Hit);
                seal();
                emitReady(i);
                return;
            }
        }

        if (store) {
            store->recordMiss();
            if (col)
                col->recordCacheEvent(obs::CacheEventKind::Miss);
        }
        const std::uint64_t t_sim = timing ? obs::hostNowUs() : 0;
        try {
            r.cases = fn(jobs[i].options);
            if (r.cases.empty())
                r.error = kNoArchError;
        } catch (const std::exception &e) {
            r.error = e.what();
        } catch (...) {
            r.error = "unknown exception";
        }
        if (timing)
            host.simUs = obs::hostNowUs() - t_sim;

        // Only successful scenarios are worth remembering; a failure
        // should re-run (and re-report) next time.
        if (store && store->writesEnabled() && r.error.empty()) {
            const std::uint64_t t_enc = timing ? obs::hostNowUs() : 0;
            const std::string payload =
                cache::encodeCaseResult(r.cases);
            const std::uint64_t t_store =
                timing ? obs::hostNowUs() : 0;
            if (timing)
                host.encodeUs = t_store - t_enc;
            store->store(key, payload, &r.cacheStored);
            if (timing)
                host.cacheStoreUs = obs::hostNowUs() - t_store;
            if (col)
                col->recordCacheEvent(obs::CacheEventKind::Store);
        }
        seal();
        emitReady(i);
    });
    if (emit_error)
        std::rethrow_exception(emit_error);
    return results;
}

std::vector<std::string>
ScenarioPool::mapCached(
    std::size_t count,
    const std::function<cache::ScenarioKey(std::size_t)> &keyOf,
    const std::function<std::string(std::size_t)> &compute,
    const cache::ResultStore *store) const
{
    if (!store)
        return map<std::string>(count, compute);
    return map<std::string>(count, [&](std::size_t i) {
        const cache::ScenarioKey key = keyOf(i);
        if (store->readsEnabled()) {
            if (auto payload = store->lookup(key)) {
                store->recordHit();
                return *payload;
            }
        }
        store->recordMiss();
        std::string payload = compute(i);
        if (store->writesEnabled())
            store->store(key, payload);
        return payload;
    });
}

} // namespace runner
} // namespace canon
