#include "runner/pool.hh"

#include <algorithm>
#include <atomic>
#include <thread>

namespace canon
{
namespace runner
{

std::vector<ScenarioResult>
ScenarioPool::run(
    const std::vector<SweepJob> &jobs,
    const std::function<CaseResult(const cli::Options &)> &fn) const
{
    std::vector<ScenarioResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        results[i].job = jobs[i];
    if (jobs.empty())
        return results;

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            ScenarioResult &r = results[i];
            try {
                r.cases = fn(jobs[i].options);
                if (r.cases.empty())
                    r.error = kNoArchError;
            } catch (const std::exception &e) {
                r.error = e.what();
            }
        }
    };

    const int n = std::clamp(
        workers_, 1, static_cast<int>(std::min<std::size_t>(
                         jobs.size(), 256)));
    if (n == 1) {
        // Degenerate pool: run inline, no thread spawn.
        worker();
        return results;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    return results;
}

} // namespace runner
} // namespace canon
