#include "runner/pool.hh"

#include <algorithm>
#include <atomic>
#include <thread>

namespace canon
{
namespace runner
{

void
ScenarioPool::forEach(
    std::size_t count,
    const std::function<void(std::size_t)> &task) const
{
    if (count == 0)
        return;

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            task(i);
        }
    };

    const int n = std::clamp(
        workers_, 1,
        static_cast<int>(std::min<std::size_t>(count, 256)));
    if (n == 1) {
        // Degenerate pool: run inline, no thread spawn.
        worker();
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
}

std::vector<ScenarioResult>
ScenarioPool::run(
    const std::vector<SweepJob> &jobs,
    const std::function<CaseResult(const cli::Options &)> &fn) const
{
    std::vector<ScenarioResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        results[i].job = jobs[i];

    forEach(jobs.size(), [&](std::size_t i) {
        ScenarioResult &r = results[i];
        try {
            r.cases = fn(jobs[i].options);
            if (r.cases.empty())
                r.error = kNoArchError;
        } catch (const std::exception &e) {
            r.error = e.what();
        } catch (...) {
            r.error = "unknown exception";
        }
    });
    return results;
}

} // namespace runner
} // namespace canon
