#include "runner/aggregate.hh"

#include <algorithm>

#include "power/energy.hh"

namespace canon
{
namespace runner
{

std::vector<std::string>
orderedArchs(const cli::Options &opt, const CaseResult &cases)
{
    const std::vector<std::string> requested =
        opt.archs.empty() ? std::vector<std::string>{"canon"}
                          : opt.archs;
    std::vector<std::string> out;
    for (const auto &a : cli::knownArchs()) {
        bool wanted = std::find(requested.begin(), requested.end(),
                                a) != requested.end();
        if (wanted && cases.count(a))
            out.push_back(a);
    }
    return out;
}

std::vector<std::string>
statsCells(const CanonConfig &cfg, const ExecutionProfile &profile,
           double canon_cycles, bool probe_spad)
{
    const EnergyModel energy;
    const EnergyReport rep = energy.evaluate(profile, cfg.clockGhz);

    std::string perf = "X";
    if (canon_cycles > 0.0 && profile.cycles > 0)
        perf = Table::fmt(canon_cycles /
                          static_cast<double>(profile.cycles));

    std::vector<std::string> cells = {
        Table::fmtInt(profile.cycles),
        Table::fmt(rep.seconds() * 1e6, 3),
        Table::fmt(100.0 * profile.utilization(cfg.numMacs()), 1),
        Table::fmtInt(profile.get("laneMacs")),
        Table::fmtInt(profile.get("stateTransitions")),
        Table::fmt(rep.totalJoules() * 1e6, 3),
        Table::fmt(rep.watts() * 1e3, 2),
        perf,
    };

    if (probe_spad) {
        // Scratchpad occupancy probes exist only for profiles that
        // carry orchestrator counters (canon); baselines render "X".
        // The occupancy denominator is orchestrator-cycles (rows x
        // cycles): SpadOcc is mean resident rows per orchestrator.
        const bool probed =
            profile.activity.count("spadResidentSum") != 0;
        const double orch_cycles =
            static_cast<double>(profile.get("orchCycles"));
        if (probed && orch_cycles > 0.0) {
            cells.push_back(Table::fmt(
                static_cast<double>(
                    profile.get("spadResidentSum")) / orch_cycles,
                2));
            cells.push_back(Table::fmt(
                100.0 *
                    static_cast<double>(
                        profile.get("spadCapCycles")) / orch_cycles,
                1));
            const auto probes = profile.get("bufferSearches");
            cells.push_back(
                probes == 0
                    ? "X"
                    : Table::fmt(static_cast<double>(
                                     profile.get("tagCompares")) /
                                     static_cast<double>(probes),
                                 2));
        } else {
            cells.insert(cells.end(), {"X", "X", "X"});
        }
    }
    return cells;
}

const std::vector<std::string> &
statsHeader(bool probe_spad)
{
    static const std::vector<std::string> header = {
        "Cycles",      "Time(us)",   "Util%",
        "LaneMACs",    "StateXitions", "Energy(uJ)",
        "Power(mW)",   "Perf/Canon",
    };
    static const std::vector<std::string> probe_header = [] {
        std::vector<std::string> h = header;
        h.insert(h.end(), {"SpadOcc", "SpadCap%", "Cmp/Probe"});
        return h;
    }();
    return probe_spad ? probe_header : header;
}

std::size_t
SweepResult::failureCount() const
{
    std::size_t n = 0;
    for (const auto &r : results_)
        if (!r.error.empty())
            ++n;
    return n;
}

Table
sweepTable(const std::vector<ScenarioResult> &results)
{
    // The render-only probe flag is shared by every job of one
    // invocation; any row's options carry it.
    const bool probe_spad =
        !results.empty() && results.front().job.options.probeSpad;

    Table t("canonsim sweep");
    std::vector<std::string> header = {"Scenario", "Point", "Arch"};
    for (const auto &col : statsHeader(probe_spad))
        header.push_back(col);
    t.header(std::move(header));

    for (const auto &r : results) {
        const std::string scenario = r.job.options.workloadLabel();
        const std::string point =
            r.job.point.empty() ? "-" : r.job.point;

        if (!r.error.empty()) {
            std::vector<std::string> row = {scenario, point, "X"};
            for (std::size_t c = 0; c < statsHeader(probe_spad).size();
                 ++c)
                row.push_back("X");
            t.addRow(std::move(row));
            continue;
        }

        const CanonConfig cfg = r.job.options.fabricConfig();
        const bool have_canon = r.cases.count("canon") != 0;
        const double canon_cycles =
            have_canon
                ? static_cast<double>(r.cases.at("canon").cycles)
                : 0.0;

        for (const auto &arch : orderedArchs(r.job.options, r.cases)) {
            std::vector<std::string> row = {scenario, point, arch};
            for (auto &cell : statsCells(cfg, r.cases.at(arch),
                                         canon_cycles, probe_spad))
                row.push_back(std::move(cell));
            t.addRow(std::move(row));
        }
    }
    return t;
}

Table
SweepResult::table() const
{
    return sweepTable(results_);
}

} // namespace runner
} // namespace canon
