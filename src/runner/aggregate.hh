/**
 * @file
 * Sweep result aggregation: collects the per-scenario outcomes of a
 * pool run and renders them as one combined table (one row per
 * scenario x architecture) suitable for printing and CSV export.
 * Row order follows job expansion order, so sweep output is
 * reproducible byte-for-byte across worker counts; for a sharded run
 * the results are a contiguous expansion-order slice and the
 * rendered rows concatenate across shards in shard order.
 *
 * Ownership and thread-safety: SweepResult takes the scenario
 * results by value and the free helpers below are pure functions of
 * their arguments; everything here runs single-threaded after the
 * pool has joined its workers. Rendering never re-runs a scenario.
 */

#ifndef CANON_RUNNER_AGGREGATE_HH
#define CANON_RUNNER_AGGREGATE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/config.hh"
#include "power/profile.hh"
#include "runner/pool.hh"

namespace canon
{
namespace runner
{

/**
 * The per-architecture stats cells (cycles, time, utilization, MACs,
 * transitions, energy, power, speedup-vs-canon) shared by the
 * single-scenario table and the combined sweep table. @p canon_cycles
 * of 0 renders the speedup column as "X" (no canon reference).
 * @p probe_spad appends the scratchpad occupancy probe columns (mean
 * resident rows, % cycles at the resident cap, tag compares per
 * buffer probe); profiles without orchestrator counters render "X".
 */
std::vector<std::string> statsCells(const CanonConfig &cfg,
                                    const ExecutionProfile &profile,
                                    double canon_cycles,
                                    bool probe_spad = false);

/** Header labels matching statsCells, in the same order. */
const std::vector<std::string> &statsHeader(bool probe_spad = false);

/**
 * Architectures present in @p cases that were requested by @p opt,
 * in the paper's display order (canon first, then the baselines).
 * Empty opt.archs means canon only, per the Options contract.
 */
std::vector<std::string> orderedArchs(const cli::Options &opt,
                                      const CaseResult &cases);

/**
 * The combined sweep table (a row per scenario x architecture, in
 * job order) rendered straight from a result list -- the copy-free
 * path behind SweepResult::table() and engine::ResultSet.
 */
Table sweepTable(const std::vector<ScenarioResult> &results);

class SweepResult
{
  public:
    explicit SweepResult(std::vector<ScenarioResult> results)
        : results_(std::move(results))
    {
    }

    const std::vector<ScenarioResult> &scenarios() const
    {
        return results_;
    }

    /** Scenarios that produced no profiles (or threw). */
    std::size_t failureCount() const;

    /**
     * One combined table: a row per scenario x architecture, in job
     * order, each scenario's archs in display order. Failed
     * scenarios render one row with "X" stats so the grid shape is
     * preserved.
     */
    Table table() const;

  private:
    std::vector<ScenarioResult> results_;
};

} // namespace runner
} // namespace canon

#endif // CANON_RUNNER_AGGREGATE_HH
