/**
 * @file
 * Sweep specification: a list of named axes (workload parameters or
 * fabric dimensions, each with a value list) whose cartesian product
 * expands a base Options into one job per scenario.
 *
 * Axis values are validated when the axis is added -- through the
 * same option applier the CLI parser uses -- so expansion itself
 * cannot fail and a malformed sweep is reported before any simulation
 * starts. Expansion order is deterministic: axes vary like nested
 * loops in declaration order, the last-declared axis fastest.
 *
 * Ownership and thread-safety: a SweepSpec owns its axes outright
 * and expand() returns jobs that own copies of their Options, so a
 * job list outlives the spec and may be consumed from any thread.
 * Mutation (addAxis) is not synchronized -- build the spec on one
 * thread, then share it const. The expansion order is the anchor of
 * the whole subsystem's determinism contract: job index i always
 * denotes the same scenario, no matter how many workers or shards
 * later execute the list (see pool.hh and shard.hh).
 */

#ifndef CANON_RUNNER_SWEEP_HH
#define CANON_RUNNER_SWEEP_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "cli/options.hh"

namespace canon
{
namespace runner
{

/**
 * One scenario of a sweep: the fully applied options plus a
 * "key=value key=value" point label naming the axis assignment that
 * produced it (empty for the degenerate no-axis sweep).
 */
struct SweepJob
{
    std::size_t index = 0; //!< position in expansion order
    cli::Options options;
    std::string point; //!< axis assignment, e.g. "sparsity=0.5 rows=4"
};

class SweepSpec
{
  public:
    /**
     * Add one axis from its key and comma-separated value list.
     * Every value is validated immediately against the CLI option
     * grammar. Returns an empty string on success, otherwise the
     * error message (unknown key, duplicate axis, malformed value).
     */
    std::string addAxis(const std::string &key,
                        const std::string &values);

    /** Number of declared axes. */
    std::size_t axisCount() const { return axes_.size(); }

    /** True when an axis named @p key was declared. */
    bool hasAxis(const std::string &key) const;

    /** True when axis @p key exists and lists @p value. */
    bool axisHasValue(const std::string &key,
                      const std::string &value) const;

    /** Product of the axis lengths; 1 when no axis was declared. */
    std::size_t jobCount() const;

    /**
     * Expand @p base into the cartesian product of the axes, one
     * SweepJob per combination. With no axes this returns a single
     * job carrying @p base unchanged.
     */
    std::vector<SweepJob> expand(const cli::Options &base) const;

  private:
    struct Axis
    {
        std::string key;
        std::vector<std::string> values;
    };

    std::vector<Axis> axes_;
};

/**
 * Build a SweepSpec from the raw (key, values) pairs collected by the
 * CLI parser. Returns an empty string on success, otherwise the first
 * error.
 */
std::string makeSweepSpec(
    const std::vector<std::pair<std::string, std::string>> &axes,
    SweepSpec &out);

} // namespace runner
} // namespace canon

#endif // CANON_RUNNER_SWEEP_HH
