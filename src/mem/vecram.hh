/**
 * @file
 * Vector-granular on-chip RAM: the storage behind both the per-PE data
 * memory (4 KB of INT8, read as 4-element vectors) and the dual-ported
 * scratchpad (Vec4 psum entries).
 *
 * Port discipline is structural in Canon: an instruction can name each
 * memory at most once per operand role, and the 3-stage pipeline
 * separates read (LOAD) from write (COMMIT) -- "the read ports ... are
 * accessed only during the LOAD stage ... write ports ... exclusively
 * during the COMMIT stage" (Section 3.1). The PE model enforces the
 * compile-time operand restrictions; VecRam checks bounds and counts
 * accesses for the power model.
 */

#ifndef CANON_MEM_VECRAM_HH
#define CANON_MEM_VECRAM_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace canon
{

class VecRam
{
  public:
    /**
     * @param name      instance name for diagnostics
     * @param slots     number of Vec4 entries
     * @param elem_bytes bytes per lane element as fabricated (1 for the
     *                   INT8 data memory, 4 for the psum scratchpad);
     *                   only capacity accounting depends on it
     */
    VecRam(std::string name, int slots, int elem_bytes, StatGroup &stats);

    int slots() const { return static_cast<int>(data_.size()); }
    std::size_t sizeBytes() const
    {
        return data_.size() * kSimdWidth * elemBytes_;
    }

    const Vec4 &read(int slot);
    void write(int slot, const Vec4 &v);

    /** Direct initialization (data placement before execution). */
    void poke(int slot, const Vec4 &v);

    /** Direct inspection without touching access counters. */
    const Vec4 &peek(int slot) const;

    void
    fill(const Vec4 &v)
    {
        for (auto &slot : data_)
            slot = v;
    }

  private:
    void checkSlot(int slot) const;

    std::string name_;
    int elemBytes_;
    std::vector<Vec4> data_;
    Counter &reads_;
    Counter &writes_;
};

} // namespace canon

#endif // CANON_MEM_VECRAM_HH
