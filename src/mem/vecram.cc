#include "mem/vecram.hh"

namespace canon
{

VecRam::VecRam(std::string name, int slots, int elem_bytes,
               StatGroup &stats)
    : name_(std::move(name)), elemBytes_(elem_bytes),
      data_(static_cast<std::size_t>(slots)),
      reads_(stats.counter(name_ + "Reads")),
      writes_(stats.counter(name_ + "Writes"))
{
    panicIf(slots <= 0, "VecRam ", name_, ": slots must be positive");
    panicIf(elem_bytes != 1 && elem_bytes != 2 && elem_bytes != 4,
            "VecRam ", name_, ": unsupported element width ", elem_bytes);
}

void
VecRam::checkSlot(int slot) const
{
    panicIf(slot < 0 || slot >= slots(), "VecRam ", name_, ": slot ",
            slot, " out of ", slots());
}

const Vec4 &
VecRam::read(int slot)
{
    checkSlot(slot);
    ++reads_;
    return data_[static_cast<std::size_t>(slot)];
}

void
VecRam::write(int slot, const Vec4 &v)
{
    checkSlot(slot);
    ++writes_;
    data_[static_cast<std::size_t>(slot)] = v;
}

void
VecRam::poke(int slot, const Vec4 &v)
{
    checkSlot(slot);
    data_[static_cast<std::size_t>(slot)] = v;
}

const Vec4 &
VecRam::peek(int slot) const
{
    checkSlot(slot);
    return data_[static_cast<std::size_t>(slot)];
}

} // namespace canon
