#include "mem/main_memory.hh"

#include <cmath>

#include "common/logging.hh"

namespace canon
{

MemoryDevice
lpddr5x16()
{
    return {"LPDDR5X 16x", 17.0};
}

MemoryDevice
lpddr5x32()
{
    return {"LPDDR5X 32x", 34.0};
}

double
TrafficModel::requiredBandwidthGBps(std::uint64_t cycles,
                                    double clock_ghz) const
{
    panicIf(cycles == 0, "TrafficModel: zero execution cycles");
    const double seconds =
        static_cast<double>(cycles) / (clock_ghz * 1e9);
    return static_cast<double>(totalBytes()) / seconds / 1e9;
}

std::uint64_t
TrafficModel::transferCycles(const MemoryDevice &dev,
                             double clock_ghz) const
{
    const double seconds =
        static_cast<double>(totalBytes()) / (dev.bandwidthGBps * 1e9);
    return static_cast<std::uint64_t>(
        std::ceil(seconds * clock_ghz * 1e9));
}

} // namespace canon
