/**
 * @file
 * Off-chip memory bandwidth model.
 *
 * The paper's configuration uses LPDDR5x at 17 GB/s (single-die x16)
 * and discusses a 34 GB/s dual-die option (Figure 16). For the
 * experiments here a bandwidth/traffic model suffices: the fabric
 * simulators record bytes moved; this model converts traffic and
 * achieved compute throughput into required bandwidth and checks it
 * against device envelopes.
 */

#ifndef CANON_MEM_MAIN_MEMORY_HH
#define CANON_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <string>

namespace canon
{

struct MemoryDevice
{
    std::string name;
    double bandwidthGBps;
};

/** LPDDR5x single-die x16 (Table 1 configuration). */
MemoryDevice lpddr5x16();

/** LPDDR5x dual-die x32 (Figure 16 upper reference line). */
MemoryDevice lpddr5x32();

class TrafficModel
{
  public:
    void addRead(std::uint64_t bytes) { bytesRead_ += bytes; }
    void addWrite(std::uint64_t bytes) { bytesWritten_ += bytes; }

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t totalBytes() const { return bytesRead_ + bytesWritten_; }

    /**
     * Bandwidth (GB/s) needed to sustain this traffic over @p cycles at
     * @p clock_ghz without stalling the compute roofline.
     */
    double requiredBandwidthGBps(std::uint64_t cycles,
                                 double clock_ghz = 1.0) const;

    /** Cycles the device needs to move the recorded traffic. */
    std::uint64_t transferCycles(const MemoryDevice &dev,
                                 double clock_ghz = 1.0) const;

    void
    reset()
    {
        bytesRead_ = bytesWritten_ = 0;
    }

  private:
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace canon

#endif // CANON_MEM_MAIN_MEMORY_HH
