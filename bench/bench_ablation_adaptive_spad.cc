/**
 * @file
 * Section 6.5 ablation: "By incorporating compile-time knowledge
 * about the expected sparsity range (S1, S2, S3), Canon achieves an
 * additional ~5% performance improvement on average by adjusting the
 * effective scratchpad range" -- the effective buffer depth is
 * software-managed through the orchestrator FSM even though the
 * physical scratchpad is fixed.
 *
 * We compare the conservative fixed depth (16, used when nothing is
 * known about the input) against the best depth per sparsity range.
 */

#include "common/table.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"

using namespace canon;

namespace
{

Cycle
runAtDepth(double sparsity, int depth, std::uint64_t seed)
{
    CanonConfig cfg;
    cfg.spadEntries = depth;
    Rng rng(seed);
    const auto a = randomSparse(512, 256, sparsity, rng);
    const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
    return fabric.run();
}

} // namespace

int
main()
{
    setQuiet(true);
    const std::vector<int> candidate_depths = {2, 4, 8, 16, 32, 64};

    Table t("Section 6.5: sparsity-aware effective scratchpad depth");
    t.header({"Range", "Sparsity", "Fixed-16 cycles", "Best depth",
              "Tuned cycles", "Gain"});

    double total_gain = 0.0;
    int cases = 0;
    for (auto [range, sp] :
         {std::pair{"S1", 0.15}, {"S2", 0.45}, {"S3", 0.80},
          std::pair{"S3", 0.92}}) {
        const std::uint64_t seed = 400 + cases;
        const auto fixed = runAtDepth(sp, 16, seed);
        Cycle best = fixed;
        int best_depth = 16;
        for (int d : candidate_depths) {
            const auto c = runAtDepth(sp, d, seed);
            if (c < best) {
                best = c;
                best_depth = d;
            }
        }
        const double gain =
            (static_cast<double>(fixed) - static_cast<double>(best)) /
            static_cast<double>(fixed);
        total_gain += gain;
        ++cases;
        t.addRow({range, Table::fmt(sp, 2), Table::fmtInt(fixed),
                  std::to_string(best_depth), Table::fmtInt(best),
                  Table::fmt(gain * 100.0, 1) + "%"});
    }
    t.addRow({"avg", "-", "-", "-", "-",
              Table::fmt(total_gain / cases * 100.0, 1) +
                  "% (paper: ~5%)"});
    t.print();
    t.writeCsv("ablation_adaptive_spad.csv");
    return 0;
}
