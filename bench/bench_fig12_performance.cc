/**
 * @file
 * Figure 12: speedup (fragility) of the five architectures,
 * normalized to Canon, across the twelve workload classes. "X" marks
 * architectures that cannot run a workload (the dense/sparse
 * accelerators on PolyBench), exactly as in the paper.
 *
 * Values > 1 mean the baseline is faster than Canon on that
 * workload; the paper's qualitative shape to check: near-parity on
 * GEMM, systolic collapse under sparsity, 2:4-systolic parity only on
 * 2:4, ZeD within a few percent on unstructured SpMM, Canon ahead on
 * window attention, CGRA ahead only on the low-DLP BLAS solvers.
 */

#include "bench_util.hh"

using namespace canon;
using namespace canon::bench;

int
main()
{
    setQuiet(true);
    ArchSuite suite;
    const auto cases = buildFigure12Cases(suite);

    Table t("Figure 12: normalized performance (baseline / Canon; "
            "X = cannot run)");
    std::vector<std::string> header = {"Workload"};
    for (const auto &a : archOrder())
        header.push_back(archLabel(a));
    t.header(header);

    for (const auto &c : cases) {
        std::vector<std::string> row = {c.label};
        for (const auto &a : archOrder())
            row.push_back(cell(normalizedPerformance(c.results, a)));
        t.addRow(row);
    }
    t.print();
    t.writeCsv("fig12_performance.csv");
    return 0;
}
