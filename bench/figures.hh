/**
 * @file
 * The paper's figure benches as FigureBench builders, one per bench
 * binary. Each builder declares the figure's scenario grid (a
 * FigureSpec axis list per table) and the emit function that runs one
 * grid point; execution, --jobs/--shard handling, and rendering are
 * the shared FigureBench machinery on runner::ScenarioPool.
 *
 * Definitions live in bench/figures/*.cc inside the canon_benchutil
 * library -- not in the binaries -- so tests and tools can build and
 * run any figure in-process. The bench_* binaries are thin mains:
 *
 *   int main(int argc, char **argv)
 *   { return canon::bench::figure12Bench().main(argc, argv); }
 */

#ifndef CANON_BENCH_FIGURES_HH
#define CANON_BENCH_FIGURES_HH

#include <vector>

#include "figure_spec.hh"

namespace canon
{
namespace bench
{

FigureBench figure09Bench();  //!< area-delta feature ablation
FigureBench figure10Bench();  //!< area breakdowns + generality tax
FigureBench figure11Bench();  //!< PE power breakdown + FSM transitions
FigureBench figure12Bench();  //!< normalized performance matrix
FigureBench figure13Bench();  //!< normalized perf/W matrix
FigureBench figure14Bench();  //!< model-level EDP
FigureBench figure15Bench();  //!< scalability vs arithmetic intensity
FigureBench figure16Bench();  //!< bandwidth roofline requirements
FigureBench figure17Bench();  //!< scratchpad-depth sensitivity
FigureBench table1Bench();    //!< evaluated configuration
FigureBench adaptiveSpadBench(); //!< sparsity-aware depth ablation
FigureBench rowReorderBench();   //!< row-reorganization ablation
FigureBench simThroughputBench(); //!< simulator self-timing

/** One registry row: binary name -> its FigureBench builder. */
struct FigureEntry
{
    const char *binary;
    FigureBench (*build)();
};

/** Every figure bench binary, in bench/ listing order. */
const std::vector<FigureEntry> &figureRegistry();

} // namespace bench
} // namespace canon

#endif // CANON_BENCH_FIGURES_HH
