/**
 * @file
 * Figure 17: impact of scratchpad depth {1,4,8,16,32,64} on compute
 * utilization across sparsity ranges, on the cycle simulator. The
 * paper's shape: deeper buffers help at >=60 % sparsity (10-20 %
 * utilization over the single-register baseline around depth 16),
 * while very deep buffers stop paying.
 */

#include "common/table.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"

using namespace canon;

int
main()
{
    setQuiet(true);
    const std::vector<int> depths = {1, 4, 8, 16, 32, 64};
    const std::vector<double> sparsities = {0.05, 0.15, 0.25, 0.35,
                                            0.45, 0.55, 0.65, 0.75,
                                            0.85};

    Table t("Figure 17: compute utilization vs scratchpad depth");
    std::vector<std::string> header = {"Sparsity"};
    for (int d : depths)
        header.push_back("depth=" + std::to_string(d));
    t.header(header);

    for (double sp : sparsities) {
        std::vector<std::string> row = {Table::fmt(sp, 2)};
        for (int d : depths) {
            CanonConfig cfg;
            cfg.spadEntries = d;
            Rng rng(static_cast<std::uint64_t>(sp * 100) + 7);
            const auto a = randomSparse(512, 256, sp, rng);
            const auto b =
                randomDense(256, cfg.cols * kSimdWidth, rng);
            CanonFabric fabric(cfg);
            fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
            fabric.run();
            row.push_back(Table::fmt(fabric.utilization(), 3));
        }
        t.addRow(row);
    }
    t.print();
    t.writeCsv("fig17_scratchpad.csv");
    return 0;
}
