#include "bench_util.hh"

#include <cmath>

namespace canon
{
namespace bench
{

namespace
{

/** Geometric-mean aggregate of a PolyBench group on Canon and CGRA. */
WorkloadCase
polyGroupCase(PolyGroup group, const ArchSuite &suite)
{
    const CanonConfig cfg = CanonConfig::paper();
    double log_canon = 0.0, log_cgra = 0.0;
    int count = 0;
    ExecutionProfile canon_sum, cgra_sum;
    canon_sum.arch = "canon";
    cgra_sum.arch = "cgra";
    for (const auto &k : polybenchSuite()) {
        if (k.group != group)
            continue;
        const auto c = canonPolybench(k, cfg);
        const auto g = cgraPolybench(k, suite.cgra());
        log_canon += std::log(static_cast<double>(c.cycles));
        log_cgra += std::log(static_cast<double>(g.cycles));
        canon_sum.accumulate(c);
        cgra_sum.accumulate(g);
        ++count;
    }
    // Scale the accumulated activity so the cycle totals equal the
    // geomean (keeps energy ratios representative of the group).
    const double canon_geo = std::exp(log_canon / count);
    const double cgra_geo = std::exp(log_cgra / count);
    canon_sum.scale(canon_geo / static_cast<double>(canon_sum.cycles));
    cgra_sum.scale(cgra_geo / static_cast<double>(cgra_sum.cycles));
    canon_sum.peCount = cfg.numPes();
    cgra_sum.peCount = suite.cgra().config().numPes();

    WorkloadCase wc;
    wc.label = polyGroupName(group);
    wc.results["canon"] = canon_sum;
    wc.results["cgra"] = cgra_sum;
    return wc;
}

} // namespace

std::vector<WorkloadCase>
buildFigure12Cases(const ArchSuite &suite)
{
    std::vector<WorkloadCase> cases;

    // Shapes follow the paper's layer regime: K in the thousands
    // (hidden dimensions), so per-row-slice non-zero populations are
    // realistic.
    cases.push_back({"GEMM", suite.gemm(256, 512, 256, 101)});

    // Unstructured sparsity ranges: S1 0-30%, S2 30-60%, S3 60-95%.
    // S3 additionally carries the skewed row populations of real
    // activation tensors (Section 6.2).
    cases.push_back(
        {"SpMM-S1", suite.spmm(512, 1024, 256, 0.15, 102)});
    cases.push_back(
        {"SpMM-S2", suite.spmm(512, 1024, 256, 0.45, 103)});
    cases.push_back(
        {"SpMM-S3", suite.spmmBimodal(512, 1024, 256, 0.65, 0.95,
                                      104)});

    cases.push_back(
        {"SpMM-2:4", suite.spmmNm(512, 1024, 256, 2, 4, 105)});
    cases.push_back(
        {"SpMM-2:8", suite.spmmNm(512, 1024, 256, 2, 8, 106)});

    cases.push_back(
        {"SDDMM", suite.sddmm(512, 32, 512, 0.70, 107)});
    // Win1: Longformer on BERT (window 512, seq 4K, head dim 64).
    cases.push_back(
        {"SDDMM-Win1", suite.sddmmWindow(4096, 64, 512, 108)});
    // Win2: Mistral-7B (window 4K, context 16K, head dim 128).
    cases.push_back(
        {"SDDMM-Win2", suite.sddmmWindow(16384, 128, 4096, 109)});

    cases.push_back(polyGroupCase(PolyGroup::Blas, suite));
    cases.push_back(polyGroupCase(PolyGroup::Kernel, suite));
    cases.push_back(polyGroupCase(PolyGroup::Stencil, suite));
    return cases;
}

} // namespace bench
} // namespace canon
