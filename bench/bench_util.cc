#include "bench_util.hh"

#include <cmath>
#include <exception>

#include "common/logging.hh"

namespace canon
{
namespace bench
{

namespace
{

/** Geometric-mean aggregate of a PolyBench group on Canon and CGRA. */
WorkloadCase
polyGroupCase(PolyGroup group, const ArchSuite &suite)
{
    const CanonConfig cfg = CanonConfig::paper();
    double log_canon = 0.0, log_cgra = 0.0;
    int count = 0;
    ExecutionProfile canon_sum, cgra_sum;
    canon_sum.arch = "canon";
    cgra_sum.arch = "cgra";
    for (const auto &k : polybenchSuite()) {
        if (k.group != group)
            continue;
        const auto c = canonPolybench(k, cfg);
        const auto g = cgraPolybench(k, suite.cgra());
        log_canon += std::log(static_cast<double>(c.cycles));
        log_cgra += std::log(static_cast<double>(g.cycles));
        canon_sum.accumulate(c);
        cgra_sum.accumulate(g);
        ++count;
    }
    // Scale the accumulated activity so the cycle totals equal the
    // geomean (keeps energy ratios representative of the group).
    const double canon_geo = std::exp(log_canon / count);
    const double cgra_geo = std::exp(log_cgra / count);
    canon_sum.scale(canon_geo / static_cast<double>(canon_sum.cycles));
    cgra_sum.scale(cgra_geo / static_cast<double>(cgra_sum.cycles));
    canon_sum.peCount = cfg.numPes();
    cgra_sum.peCount = suite.cgra().config().numPes();

    WorkloadCase wc;
    wc.label = polyGroupName(group);
    wc.results["canon"] = canon_sum;
    wc.results["cgra"] = cgra_sum;
    return wc;
}

} // namespace

const std::vector<std::string> &
figure12Labels()
{
    static const std::vector<std::string> labels = {
        "GEMM",       "SpMM-S1",    "SpMM-S2",      "SpMM-S3",
        "SpMM-2:4",   "SpMM-2:8",   "SDDMM",        "SDDMM-Win1",
        "SDDMM-Win2", "PolyB-BLAS", "PolyB-Kernel", "PolyB-Stencil"};
    return labels;
}

WorkloadCase
figure12Case(std::size_t index, const ArchSuite &suite)
{
    const std::string &label = figure12Labels().at(index);
    switch (index) {
      // Shapes follow the paper's layer regime: K in the thousands
      // (hidden dimensions), so per-row-slice non-zero populations
      // are realistic.
      case 0:
        return {label, suite.gemm(256, 512, 256, 101)};

      // Unstructured sparsity ranges: S1 0-30%, S2 30-60%, S3 60-95%.
      // S3 additionally carries the skewed row populations of real
      // activation tensors (Section 6.2).
      case 1:
        return {label, suite.spmm(512, 1024, 256, 0.15, 102)};
      case 2:
        return {label, suite.spmm(512, 1024, 256, 0.45, 103)};
      case 3:
        return {label,
                suite.spmmBimodal(512, 1024, 256, 0.65, 0.95, 104)};

      case 4:
        return {label, suite.spmmNm(512, 1024, 256, 2, 4, 105)};
      case 5:
        return {label, suite.spmmNm(512, 1024, 256, 2, 8, 106)};

      case 6:
        return {label, suite.sddmm(512, 32, 512, 0.70, 107)};
      // Win1: Longformer on BERT (window 512, seq 4K, head dim 64).
      case 7:
        return {label, suite.sddmmWindow(4096, 64, 512, 108)};
      // Win2: Mistral-7B (window 4K, context 16K, head dim 128).
      case 8:
        return {label, suite.sddmmWindow(16384, 128, 4096, 109)};

      case 9:
        return polyGroupCase(PolyGroup::Blas, suite);
      case 10:
        return polyGroupCase(PolyGroup::Kernel, suite);
      case 11:
        return polyGroupCase(PolyGroup::Stencil, suite);
      default:
        fatal("figure12Case: index ", index, " out of range");
    }
}

std::vector<WorkloadCase>
buildFigure12Cases(const ArchSuite &suite)
{
    std::vector<WorkloadCase> cases;
    for (std::size_t i = 0; i < figure12Labels().size(); ++i)
        cases.push_back(figure12Case(i, suite));
    return cases;
}

const char *
benchUsageText()
{
    return "Options:\n"
           "  --jobs N     worker threads (default: hardware"
           " concurrency,\n"
           "               except timing benches which default to 1;\n"
           "               output is byte-identical regardless of N)\n"
           "  --shard I/N  run slice I of N of the job list"
           " (default 0/1);\n"
           "               shard CSVs concatenate in shard order to"
           " the\n"
           "               full CSV (only shard 0 writes the header)\n"
           "  --cache-dir D  content-addressed result cache: grid"
           " points\n"
           "               already in D render without re-simulating"
           " (a\n"
           "               warm rerun executes 0 jobs, byte-identical"
           " CSVs);\n"
           "               safe to share across --jobs/--shard runs\n"
           "  --cache M    off | read | write | readwrite | refresh\n"
           "               (default readwrite; refresh re-runs and\n"
           "               overwrites existing entries)\n"
           "  --sample-every N  sample fabric counters every N"
           " simulated\n"
           "               cycles (cycle-resolved time series)\n"
           "  --series-out P  sampled series as long-form CSV"
           " (requires\n"
           "               --sample-every)\n"
           "  --trace-out P  Chrome trace-event JSON of the run\n"
           "  --stats-json P  canon.stats.v2 per-point stats dump\n"
           "  --cycle-accounting  per-component stall-cause cycle\n"
           "               breakdown + occupancy histograms\n"
           "  --host-timers  host wall-clock phase timers per point\n"
           "               (--stats-json only; not byte-stable)\n"
           "               (observability flags never change figure\n"
           "               CSVs or cache keys; cached points render\n"
           "               without simulating and go unobserved)\n"
           "  --help       show this text and exit\n";
}

std::string
parseBenchArgs(const std::vector<std::string> &args, BenchOptions &out)
{
    // A bench binary's whole grammar is --help plus the common
    // execution flags; the shared parser keeps spellings, ranges,
    // and error messages identical to canonsim's.
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string key = args[i];
        std::string value;
        bool have_value = false;

        if (auto eq = key.find('='); eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
            have_value = true;
        }

        if (key == "--help" || key == "-h") {
            out.showHelp = true;
            continue;
        }
        if (!engine::isCommonFlag(key))
            return "unknown option '" + key + "' (see --help)";
        if (!have_value && !engine::isCommonBoolFlag(key)) {
            if (i + 1 >= args.size())
                return "option '" + key + "' expects a value";
            value = args[++i];
        }

        std::string err;
        engine::parseCommonFlag(key, value, out.common, err);
        if (!err.empty())
            return err;
    }
    return engine::validateCommonFlags(out.common);
}

} // namespace bench
} // namespace canon
