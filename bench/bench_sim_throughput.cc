/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cycle
 * throughput of the Canon fabric, the orchestrator's LUT path, the
 * systolic reference simulator, and the CGRA mapper. Useful for
 * keeping the cycle-level substrate fast enough for the figure
 * benches.
 */

#include <benchmark/benchmark.h>

#include "baselines/cgra.hh"
#include "baselines/systolic.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"
#include "workloads/polybench.hh"

using namespace canon;

namespace
{

void
BM_CanonSpmmCyclesPerSecond(benchmark::State &state)
{
    setQuiet(true);
    const auto sparsity = static_cast<double>(state.range(0)) / 100.0;
    CanonConfig cfg;
    Rng rng(1);
    const auto a = randomSparse(128, 256, sparsity, rng);
    const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);
    const auto csr = CsrMatrix::fromDense(a);
    const auto mapping = mapSpmm(csr, b, cfg);

    std::uint64_t cycles = 0;
    for (auto _ : state) {
        CanonFabric fabric(cfg);
        fabric.load(mapping);
        cycles += fabric.run();
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CanonSpmmCyclesPerSecond)->Arg(10)->Arg(50)->Arg(90);

void
BM_SystolicSim(benchmark::State &state)
{
    Rng rng(2);
    const int n = static_cast<int>(state.range(0));
    const auto a = randomDense(n, n, rng);
    const auto b = randomDense(n, n, rng);
    SystolicConfig cfg{8, 8, SparsitySupport::Dense};
    for (auto _ : state) {
        SystolicSim sim(cfg);
        sim.run(a, b);
        benchmark::DoNotOptimize(sim.result());
    }
}
BENCHMARK(BM_SystolicSim)->Arg(16)->Arg(32);

void
BM_LutCompile(benchmark::State &state)
{
    for (auto _ : state) {
        auto prog = buildSpmmProgram();
        benchmark::DoNotOptimize(prog->lut().lookup(0));
    }
}
BENCHMARK(BM_LutCompile);

void
BM_CgraMapper(benchmark::State &state)
{
    const auto suite = polybenchSuite();
    CgraMapper mapper;
    for (auto _ : state) {
        for (const auto &k : suite) {
            auto m = mapper.map(k.body, k.recMii);
            benchmark::DoNotOptimize(m.ii);
        }
    }
}
BENCHMARK(BM_CgraMapper);

} // namespace

BENCHMARK_MAIN();
