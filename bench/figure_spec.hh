/**
 * @file
 * Declarative figure grids for the per-figure bench binaries.
 *
 * Every figure of the paper's evaluation is a grid of scenarios. This
 * layer lets a bench binary *declare* that grid -- a FigureSpec axis
 * list per table, exactly the SweepSpec contract of src/runner/ --
 * and submit it as one payload batch to a canon::engine::Engine
 * (which owns the worker pool and the result cache), instead of
 * hand-rolling a serial scenario loop. One FigureBench holds the
 * binary's tables; its job list is the concatenation of every table's
 * expanded grid, which gives all 13 binaries the same CLI for free:
 *
 *   bench_figNN [--jobs N] [--shard I/N] [--cache-dir D [--cache M]]
 *
 * Determinism contract (the same one canonsim's sweep mode obeys):
 *  - Grid expansion order is fixed: axes vary like nested loops in
 *    declaration order, the last-declared axis fastest; tables expand
 *    in declaration order.
 *  - Results are collected at their job index, so the rendered tables
 *    and CSVs are byte-identical for every --jobs value.
 *  - --shard I/N owns a contiguous expansion-order slice of the job
 *    list (runner::shardRange); shard 0 writes each CSV's header, so
 *    concatenating the shards' CSV files in shard order reproduces
 *    the unsharded file byte for byte. A job -- one grid point --
 *    never splits across shards, so every emitted row stays whole.
 *
 * Thread-safety: emit() is called concurrently from the pool's
 * workers, one call per grid point. An emit function must build its
 * own simulator state (runners, RNGs seeded from the point) and must
 * not write anything shared; every converted figure derives its seeds
 * from the grid point, never from execution order.
 */

#ifndef CANON_BENCH_FIGURE_SPEC_HH
#define CANON_BENCH_FIGURE_SPEC_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "engine/common_flags.hh"

namespace canon
{
namespace bench
{

/**
 * One expanded grid point: the axis assignment that names one unit of
 * a figure's work (usually one table row).
 */
struct FigurePoint
{
    std::size_t index = 0; //!< position in the table's expansion order
    /** (axis key, value) per axis, in axis declaration order. */
    std::vector<std::pair<std::string, std::string>> coords;
    /** Per-axis value index, aligned with coords. */
    std::vector<std::size_t> digits;
    std::string label; //!< "key=value key=value"; empty with no axes

    /** Value of axis @p key; fatal() when the axis does not exist. */
    const std::string &value(const std::string &key) const;

    /** value(key) parsed as double / int; fatal() on garbage. */
    double number(const std::string &key) const;
    int integer(const std::string &key) const;
};

/**
 * A declarative axis grid. With no axes it expands to a single
 * unlabeled point -- the whole-table-as-one-job case, used when a
 * table's rows share state (a common RNG stream, a cross-row
 * aggregate) and must be emitted together.
 */
class FigureSpec
{
  public:
    /** Add one axis; values must be nonempty. Returns *this. */
    FigureSpec &axis(std::string key, std::vector<std::string> values);

    std::size_t axisCount() const { return axes_.size(); }

    /** Product of the axis lengths; 1 when no axis was declared. */
    std::size_t pointCount() const;

    /**
     * The full grid in expansion order: nested loops over the axes in
     * declaration order, the last-declared axis fastest.
     */
    std::vector<FigurePoint> expand() const;

  private:
    struct Axis
    {
        std::string key;
        std::vector<std::string> values;
    };

    std::vector<Axis> axes_;
};

/** The rows one grid point contributes to its table, in order. */
using FigureRows = std::vector<std::vector<std::string>>;

/**
 * One output table of a figure bench: title/header/CSV name, the row
 * grid, and the emit function that produces the rows of one grid
 * point. Tables own their emit closures; a FigureBench owns its
 * tables.
 */
struct FigureTable
{
    std::string title;
    std::vector<std::string> header;
    std::string csvName; //!< empty: print only, no CSV file
    FigureSpec grid;     //!< no axes = the whole table is one job
    std::function<FigureRows(const FigurePoint &)> emit;
    std::string note; //!< commentary printed after the table
};

/** Execution options shared by every figure bench binary. */
struct BenchOptions
{
    /**
     * The --jobs/--shard/--cache-dir/--cache flags, parsed by the
     * grammar shared with canonsim (engine::parseCommonFlag).
     * common.jobs of 0 means the binary's declared default; grid
     * points already in the cache render without executing their
     * emit function, so a warm rerun regenerates byte-identical CSVs
     * with zero simulation jobs.
     */
    engine::CommonFlags common;

    bool showHelp = false;
};

/**
 * A figure bench binary: named tables executed over one shared
 * worker pool. Build it, add() the tables, hand main() the argv.
 */
class FigureBench
{
  public:
    explicit FigureBench(std::string name) : name_(std::move(name)) {}

    /**
     * Worker-thread default when --jobs is absent. 0 (the initial
     * value) means hardware concurrency; wall-clock-timing benches
     * set 1 so measurements do not contend by default.
     */
    FigureBench &defaultJobs(int jobs)
    {
        default_jobs_ = jobs;
        return *this;
    }

    FigureBench &add(FigureTable table);

    const std::string &name() const { return name_; }

    /** Total jobs across every table's grid. */
    std::size_t jobCount() const;

    /**
     * Submit this bench's shard of the job list to a canon::engine
     * Engine as one payload batch and render every table (and CSV)
     * in declaration order. Returns a process exit code: 0 on
     * success, 1 when a job failed or a CSV could not be written.
     */
    int run(const BenchOptions &opt, std::ostream &out,
            std::ostream &err) const;

    /** Full binary entry point: parse argv, run, report. */
    int main(int argc, char **argv) const;

  private:
    std::string name_;
    int default_jobs_ = 0;
    std::vector<FigureTable> tables_;
};

} // namespace bench
} // namespace canon

#endif // CANON_BENCH_FIGURE_SPEC_HH
