/**
 * @file
 * Figure 13: performance per watt of the five architectures
 * normalized to Canon across the twelve workload classes. Since every
 * architecture performs the same kernel, perf/W reduces to the energy
 * ratio canon/baseline; > 1 means the baseline is more efficient.
 *
 * Qualitative shape from the paper: the systolic array leads on pure
 * dense GEMM (Canon pays its generality tax), everything else
 * follows Figure 12 with ZeD additionally taxed by crossbar/decoder
 * power and the CGRA by per-PE instruction fetch.
 */

#include "bench_util.hh"

using namespace canon;
using namespace canon::bench;

int
main()
{
    setQuiet(true);
    ArchSuite suite;
    EnergyModel energy;
    const auto cases = buildFigure12Cases(suite);

    Table t("Figure 13: normalized perf/W (baseline / Canon; X = "
            "cannot run)");
    std::vector<std::string> header = {"Workload"};
    for (const auto &a : archOrder())
        header.push_back(archLabel(a));
    t.header(header);

    for (const auto &c : cases) {
        std::vector<std::string> row = {c.label};
        for (const auto &a : archOrder())
            row.push_back(
                cell(normalizedPerfPerWatt(c.results, a, energy)));
        t.addRow(row);
    }
    t.print();
    t.writeCsv("fig13_perfwatt.csv");
    return 0;
}
