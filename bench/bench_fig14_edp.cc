/**
 * @file
 * Figure 14: energy-delay product of the architectures on real ML
 * models, normalized to Canon (lower is better; log scale in the
 * paper). Models span unstructured activation sparsity (ResNet-50,
 * LLaMA-8B), dense MLPs, and Mistral-7B's window-structured
 * attention -- the paper's argument for minimal fragility across
 * kernel *mixtures*.
 */

#include "bench_util.hh"

using namespace canon;
using namespace canon::bench;

int
main()
{
    setQuiet(true);
    ArchSuite suite;
    EnergyModel energy;

    const std::vector<ModelSpec> models = {
        resnet50Conv(0.5),
        llama8bMlp(0.0),
        llama8bMlp(0.7),
        llama8bAttn(0.7),
        mistral7bMlp(0.0),
        mistral7bMlp(0.7),
        mistral7bAttn(),
        longformerAttn(),
    };

    Table t("Figure 14: EDP normalized to Canon (lower is better; "
            "X = cannot run)");
    std::vector<std::string> header = {"Model"};
    for (const auto &a : archOrder())
        header.push_back(archLabel(a));
    t.header(header);

    std::uint64_t seed = 300;
    for (const auto &spec : models) {
        const auto results = suite.model(spec, seed);
        seed += 10;
        const auto &canon_p = results.at("canon");
        const double canon_edp = energy.evaluate(canon_p).edp();

        std::vector<std::string> row = {spec.name};
        for (const auto &a : archOrder()) {
            auto it = results.find(a);
            if (it == results.end()) {
                row.push_back("X");
                continue;
            }
            const double edp = energy.evaluate(it->second).edp();
            row.push_back(Table::fmt(edp / canon_edp, 2));
        }
        t.addRow(row);
    }
    t.print();
    t.writeCsv("fig14_edp.csv");
    return 0;
}
