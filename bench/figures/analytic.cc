/**
 * @file
 * The analytical figures -- no cycle simulation, just the area and
 * configuration models: Figure 9 (feature ablation as area deltas,
 * paper: +30 % vs systolic, +9 % vs ZeD, -7 % vs CGRA), Figure 10
 * (area breakdowns, paper shares: Canon 58/13/16/5/8 %, systolic
 * 83/17 %), and Table 1 (the evaluated Canon configuration).
 */

#include "figures.hh"

#include <map>

#include "common/table.hh"
#include "core/config.hh"
#include "mem/main_memory.hh"
#include "orch/lut.hh"
#include "power/area.hh"

namespace canon
{
namespace bench
{

namespace
{

std::string
areaDelta(double canon_mm2, double base_mm2)
{
    const double d = canon_mm2 / base_mm2 - 1.0;
    return (d >= 0 ? "+" : "") + Table::fmt(d * 100.0, 1) + "%";
}

/** Breakdown rows (component, mm2, share, paper share) + TOTAL. */
FigureRows
breakdownRows(const AreaBreakdown &b,
              const std::map<std::string, double> &paper)
{
    FigureRows rows;
    for (const auto &[name, mm2] : b.componentsMm2) {
        auto it = paper.find(name);
        rows.push_back({name, Table::fmt(mm2, 4),
                        Table::fmt(b.share(name) * 100.0, 1) + "%",
                        it != paper.end()
                            ? Table::fmt(it->second * 100.0, 0) + "%"
                            : "-"});
    }
    rows.push_back({"TOTAL", Table::fmt(b.total(), 4), "100%", "-"});
    return rows;
}

} // namespace

FigureBench
figure09Bench()
{
    FigureBench bench("bench_fig09_ablation");

    FigureTable t;
    t.title = "Figure 9: Canon's features ablated through its "
              "baselines (area deltas)";
    t.header = {"Baseline", "Features removed (-) / added (+) vs Canon",
                "Baseline mm2", "Canon mm2", "Canon delta",
                "Paper delta"};
    t.csvName = "fig09_ablation.csv";
    t.grid.axis("baseline", {"Systolic", "ZeD", "CGRA"});
    t.emit = [](const FigurePoint &p) -> FigureRows {
        const AreaModel model;
        const double canon_mm2 = model.canon().total();
        switch (p.digits[0]) {
          case 0: {
            const double base = model.systolic().total();
            return {{"Systolic",
                     "+orchestrators +distributed mem +reconfig NoC "
                     "+spad",
                     Table::fmt(base, 3), Table::fmt(canon_mm2, 3),
                     areaDelta(canon_mm2, base), "+30%"}};
          }
          case 1: {
            const double base = model.zed().total();
            return {{"ZeD",
                     "-specialized decode -crossbars +orchestrators "
                     "+distributed mem",
                     Table::fmt(base, 3), Table::fmt(canon_mm2, 3),
                     areaDelta(canon_mm2, base), "+9%"}};
          }
          default: {
            const double base = model.cgra().total();
            return {{"CGRA", "-instr mem +orchestrators +distributed mem",
                     Table::fmt(base, 3), Table::fmt(canon_mm2, 3),
                     areaDelta(canon_mm2, base), "-7%"}};
          }
        }
    };
    bench.add(std::move(t));
    return bench;
}

FigureBench
figure10Bench()
{
    FigureBench bench("bench_fig10_area");

    // The breakdown tables have data-dependent row sets (the area
    // model's component census), so each is one whole-table job.
    FigureTable canon_t;
    canon_t.title = "Figure 10a: Canon area breakdown (8x8, 4KB/PE)";
    canon_t.header = {"Component", "mm2", "Share", "Paper"};
    canon_t.emit = [](const FigurePoint &) {
        return breakdownRows(AreaModel().canon(), {{"dataMem", 0.58},
                                                   {"spad", 0.13},
                                                   {"compute", 0.16},
                                                   {"routing", 0.05},
                                                   {"control", 0.08}});
    };
    bench.add(std::move(canon_t));

    FigureTable sys_t;
    sys_t.title = "Figure 10b: Systolic array area breakdown";
    sys_t.header = {"Component", "mm2", "Share", "Paper"};
    sys_t.emit = [](const FigurePoint &) {
        return breakdownRows(AreaModel().systolic(),
                             {{"dataMem", 0.83}, {"compute", 0.17}});
    };
    bench.add(std::move(sys_t));

    FigureTable overhead_t;
    overhead_t.title = "Figure 10: overhead for generality";
    overhead_t.header = {"Metric", "Measured", "Paper"};
    overhead_t.csvName = "fig10_area.csv";
    overhead_t.emit = [](const FigurePoint &) -> FigureRows {
        const AreaModel model;
        const double overhead =
            model.canon().total() / model.systolic().total() - 1.0;
        return {{"Canon vs systolic area",
                 "+" + Table::fmt(overhead * 100.0, 1) + "%", "+30%"}};
    };
    bench.add(std::move(overhead_t));
    return bench;
}

FigureBench
table1Bench()
{
    FigureBench bench("bench_table1_config");

    FigureTable t;
    t.title = "Table 1: Configuration of the evaluated Canon "
              "architecture";
    t.header = {"Component", "Configuration"};
    t.csvName = "table1_config.csv";
    t.grid.axis("component", {"Array", "SRAM", "Scratchpad",
                              "Orchestrator", "Main Memory", "Clock"});
    t.emit = [](const FigurePoint &p) -> FigureRows {
        const auto cfg = CanonConfig::paper();
        switch (p.digits[0]) {
          case 0:
            return {{"Array", std::to_string(cfg.rows) + "x" +
                                  std::to_string(cfg.cols) + " " +
                                  std::to_string(kSimdWidth) +
                                  "-SIMD INT8 array (" +
                                  std::to_string(cfg.numMacs()) +
                                  " MACs)"}};
          case 1:
            return {{"SRAM",
                     std::to_string(cfg.dmemBytesPerPe() / 1024) +
                         "KB per PE; " +
                         std::to_string(cfg.totalSramBytes() / 1024) +
                         "KB overall (incl. orchestrator LUTs)"}};
          case 2:
            return {{"Scratchpad",
                     "dual-port, " + std::to_string(cfg.spadEntries) +
                         " Vec4 entries (" +
                         std::to_string(cfg.spadBytesPerPe()) +
                         " B) per PE"}};
          case 3:
            return {{"Orchestrator",
                     std::to_string(cfg.rows) +
                         " orchestrators, 1 per PE row; " +
                         std::to_string(FsmLut::bitstreamBytes() /
                                        1024) +
                         "KB LUT bitstream each"}};
          case 4:
            return {{"Main Memory",
                     lpddr5x16().name + ", " +
                         Table::fmt(lpddr5x16().bandwidthGBps, 0) +
                         " GB/s"}};
          default:
            return {{"Clock", Table::fmt(cfg.clockGhz, 0) + " GHz"}};
        }
    };
    bench.add(std::move(t));
    return bench;
}

} // namespace bench
} // namespace canon
