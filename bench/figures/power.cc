/**
 * @file
 * Figure 11: runtime power breakdown of Canon's PEs (averaged) for
 * GEMM and sparse CNN/attention workloads at the S1/S2/S3 sparsity
 * ranges, plus the data-driven FSM state-transition counts per range.
 *
 * Workloads mirror the paper's labels: ResNet50-* are
 * activation-sparse conv GEMMs (SpMM), Attention-* are unstructured
 * sparse attention scores (SDDMM). The systolic-array GEMM bar is the
 * reference on the left of the figure.
 */

#include "figures.hh"

#include "baselines/systolic.hh"
#include "common/table.hh"
#include "power/energy.hh"
#include "workloads/canon_runner.hh"

namespace canon
{
namespace bench
{

namespace
{

constexpr double kS1 = 0.15, kS2 = 0.45, kS3 = 0.80;

/** The profile behind one power-breakdown row. */
ExecutionProfile
figure11Profile(std::size_t row)
{
    const auto cfg = CanonConfig::paper();
    if (row == 0) {
        SystolicModel sys(SystolicConfig{});
        return sys.gemm(784, 1152, 128);
    }
    CanonRunner runner(cfg);
    switch (row) {
      case 1:
        return runner.gemmShape(784, 1152, 128, 1);
      case 2:
        return runner.spmmShape(784, 1152, 128, kS1, 2);
      case 3:
        return runner.sddmmShape(512, 64, 512, kS1, 3);
      case 4:
        return runner.spmmShape(784, 1152, 128, kS2, 4);
      case 5:
        return runner.sddmmShape(512, 64, 512, kS2, 5);
      case 6:
        return runner.spmmShape(784, 1152, 128, kS3, 6);
      default:
        return runner.sddmmShape(512, 64, 512, kS3, 7);
    }
}

} // namespace

FigureBench
figure11Bench()
{
    FigureBench bench("bench_fig11_power");

    FigureTable power_t;
    power_t.title = "Figure 11: runtime power breakdown of Canon's PEs "
                    "(mW per PE, averaged)";
    power_t.header = {"Workload", "DataMem", "Spad-Read", "Spad-Write",
                      "Compute", "Ctrl&Routing", "Total/PE"};
    power_t.csvName = "fig11_power.csv";
    power_t.grid.axis("workload",
                      {"Systolic GEMM (ref)", "Canon GEMM",
                       "Resnet50-S1", "Attention-S1", "Resnet50-S2",
                       "Attention-S2", "Resnet50-S3", "Attention-S3"});
    power_t.emit = [](const FigurePoint &p) -> FigureRows {
        const EnergyModel energy;
        const ExecutionProfile profile = figure11Profile(p.digits[0]);
        const auto r = energy.evaluate(profile);
        const double pes =
            profile.peCount ? static_cast<double>(profile.peCount)
                            : 64.0;
        auto mw = [&](const std::string &cat) {
            return Table::fmt(
                r.category(cat) / static_cast<double>(r.cycles) / pes,
                3);
        };
        const double total_mw =
            r.totalPj / static_cast<double>(r.cycles) / pes;
        return {{p.value("workload"), mw("dataMem"), mw("spadRead"),
                 mw("spadWrite"), mw("compute"), mw("controlRouting"),
                 Table::fmt(total_mw, 3)}};
    };
    bench.add(std::move(power_t));

    // FSM state transitions per sparsity range (paper: S1 1.94e7,
    // S2 3.29e7, S3 9.77e7 across its full workload set). Absolute
    // counts depend on the workload set's size, so we also report
    // transitions normalized per million useful lane-MACs -- the
    // data-driven decision *rate*, which is what grows with
    // irregularity.
    FigureTable fsm_t;
    fsm_t.title = "Figure 11 (right): data-driven FSM state transitions";
    fsm_t.header = {"Sparsity range", "Transitions", "Per 1M lane-MACs",
                    "Paper (absolute)"};
    fsm_t.csvName = "fig11_transitions.csv";
    fsm_t.grid.axis("range", {"S1", "S2", "S3"});
    fsm_t.emit = [](const FigurePoint &p) -> FigureRows {
        static const struct
        {
            const char *label;
            double sparsity;
            std::uint64_t seed;
            const char *paper;
        } ranges[] = {{"S1 (0-30%)", kS1, 20, "1.94e7"},
                      {"S2 (30-60%)", kS2, 22, "3.29e7"},
                      {"S3 (60-95%)", kS3, 24, "9.77e7"}};
        const auto &range = ranges[p.digits[0]];

        CanonRunner runner(CanonConfig::paper());
        const auto a = runner.spmmShape(784, 1152, 128, range.sparsity,
                                        range.seed);
        const auto b = runner.sddmmShape(512, 64, 512, range.sparsity,
                                         range.seed + 1);
        const auto trans =
            a.get("stateTransitions") + b.get("stateTransitions");
        const auto macs = a.get("laneMacs") + b.get("laneMacs");
        return {{range.label, Table::fmtInt(trans),
                 Table::fmtInt(trans * 1'000'000 / macs),
                 range.paper}};
    };
    bench.add(std::move(fsm_t));
    return bench;
}

} // namespace bench
} // namespace canon
