#include "figures.hh"

namespace canon
{
namespace bench
{

const std::vector<FigureEntry> &
figureRegistry()
{
    static const std::vector<FigureEntry> entries = {
        {"bench_ablation_adaptive_spad", adaptiveSpadBench},
        {"bench_ablation_row_reorder", rowReorderBench},
        {"bench_fig09_ablation", figure09Bench},
        {"bench_fig10_area", figure10Bench},
        {"bench_fig11_power", figure11Bench},
        {"bench_fig12_performance", figure12Bench},
        {"bench_fig13_perfwatt", figure13Bench},
        {"bench_fig14_edp", figure14Bench},
        {"bench_fig15_scalability", figure15Bench},
        {"bench_fig16_bandwidth", figure16Bench},
        {"bench_fig17_scratchpad", figure17Bench},
        {"bench_sim_throughput", simThroughputBench},
        {"bench_table1_config", table1Bench},
    };
    return entries;
}

} // namespace bench
} // namespace canon
