/**
 * @file
 * The Section 5/6.5 ablations. Both tables carry cross-row state --
 * adaptive-spad averages its per-range gains into a final row, and
 * row-reorder draws every input from one shared RNG stream -- so each
 * is declared as a whole-table job (an axis-free grid): the rows stay
 * together on one worker and the output cannot be split mid-table by
 * a shard boundary.
 */

#include "figures.hh"

#include <utility>

#include "baselines/zed.hh"
#include "common/table.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"
#include "sparse/preprocess.hh"
#include "sparse/reference.hh"

namespace canon
{
namespace bench
{

namespace
{

Cycle
spadRunAtDepth(double sparsity, int depth, std::uint64_t seed)
{
    CanonConfig cfg;
    cfg.spadEntries = depth;
    Rng rng(seed);
    const auto a = randomSparse(512, 256, sparsity, rng);
    const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
    return fabric.run();
}

Cycle
reorderCanonCycles(const CsrMatrix &a, const DenseMatrix &b,
                   const CanonConfig &cfg)
{
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(a, b, cfg));
    return fabric.run();
}

std::uint64_t
reorderZedCycles(const CsrMatrix &a, int n)
{
    return ZedModel{}.spmm(a, n).cycles;
}

std::string
gainCell(std::uint64_t natural, std::uint64_t balanced)
{
    return Table::fmt((1.0 - static_cast<double>(balanced) /
                                 static_cast<double>(natural)) *
                          100.0,
                      1) +
           "%";
}

} // namespace

FigureBench
adaptiveSpadBench()
{
    FigureBench bench("bench_ablation_adaptive_spad");

    // Section 6.5: "By incorporating compile-time knowledge about the
    // expected sparsity range (S1, S2, S3), Canon achieves an
    // additional ~5% performance improvement on average by adjusting
    // the effective scratchpad range" -- the effective buffer depth
    // is software-managed through the orchestrator FSM even though
    // the physical scratchpad is fixed. We compare the conservative
    // fixed depth (16, used when nothing is known about the input)
    // against the best depth per sparsity range.
    FigureTable t;
    t.title = "Section 6.5: sparsity-aware effective scratchpad depth";
    t.header = {"Range", "Sparsity", "Fixed-16 cycles", "Best depth",
                "Tuned cycles", "Gain"};
    t.csvName = "ablation_adaptive_spad.csv";
    t.emit = [](const FigurePoint &) -> FigureRows {
        const std::vector<int> candidate_depths = {2, 4, 8, 16, 32, 64};

        FigureRows rows;
        double total_gain = 0.0;
        int cases = 0;
        for (auto [range, sp] :
             {std::pair{"S1", 0.15}, {"S2", 0.45}, {"S3", 0.80},
              std::pair{"S3", 0.92}}) {
            const std::uint64_t seed = 400 + cases;
            const auto fixed = spadRunAtDepth(sp, 16, seed);
            Cycle best = fixed;
            int best_depth = 16;
            for (int d : candidate_depths) {
                const auto c = spadRunAtDepth(sp, d, seed);
                if (c < best) {
                    best = c;
                    best_depth = d;
                }
            }
            const double gain = (static_cast<double>(fixed) -
                                 static_cast<double>(best)) /
                                static_cast<double>(fixed);
            total_gain += gain;
            ++cases;
            rows.push_back({range, Table::fmt(sp, 2),
                            Table::fmtInt(fixed),
                            std::to_string(best_depth),
                            Table::fmtInt(best),
                            Table::fmt(gain * 100.0, 1) + "%"});
        }
        rows.push_back({"avg", "-", "-", "-", "-",
                        Table::fmt(total_gain / cases * 100.0, 1) +
                            "% (paper: ~5%)"});
        return rows;
    };
    bench.add(std::move(t));
    return bench;
}

FigureBench
rowReorderBench()
{
    FigureBench bench("bench_ablation_row_reorder");

    // Section 5 excludes ZeD's row-reordering preprocessing from the
    // comparison "as the same can be applied to Canon"; this bench
    // applies it to both and quantifies it: balanced (snake) row
    // order vs the natural order on skewed inputs.
    FigureTable t;
    t.title = "Row-reorganization preprocessing (Section 5 note)";
    t.header = {"Input", "Arch", "Natural order", "Balanced order",
                "Gain"};
    t.csvName = "ablation_row_reorder.csv";
    t.emit = [](const FigurePoint &) -> FigureRows {
        const auto cfg = CanonConfig::paper();
        Rng rng(11); // one stream across both inputs, as in the paper

        FigureRows rows;
        for (auto [label, a_dense] :
             {std::pair<const char *, DenseMatrix>{
                  "bimodal 0.55/0.95",
                  randomSparseBimodal(512, 256, 0.55, 0.95, rng)},
              {"uniform 0.75", randomSparse(512, 256, 0.75, rng)}}) {
            const auto a = CsrMatrix::fromDense(a_dense);
            const auto perm = balancedRowOrder(a);
            const auto a_bal = permuteRows(a, perm);
            const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);

            // Sanity: permuted execution yields the permuted result.
            {
                CanonFabric fabric(cfg);
                fabric.load(mapSpmm(a_bal, b, cfg));
                fabric.run();
                fatalIf(perm.unpermute(fabric.result()) !=
                            reference::spmm(a, b),
                        "row reorder changed the result");
            }

            const auto c_nat = reorderCanonCycles(a, b, cfg);
            const auto c_bal = reorderCanonCycles(a_bal, b, cfg);
            rows.push_back({label, "Canon", Table::fmtInt(c_nat),
                            Table::fmtInt(c_bal),
                            gainCell(c_nat, c_bal)});

            const auto z_nat =
                reorderZedCycles(a, cfg.cols * kSimdWidth);
            const auto z_bal =
                reorderZedCycles(a_bal, cfg.cols * kSimdWidth);
            rows.push_back({label, "ZeD", Table::fmtInt(z_nat),
                            Table::fmtInt(z_bal),
                            gainCell(z_nat, z_bal)});

            // Where reordering actually matters: row-granular
            // scheduling *without* work stealing.
            ZedConfig no_steal;
            no_steal.workStealing = false;
            ZedModel fixed(no_steal);
            const auto f_nat =
                fixed.spmm(a, cfg.cols * kSimdWidth).cycles;
            const auto f_bal =
                fixed.spmm(a_bal, cfg.cols * kSimdWidth).cycles;
            rows.push_back({label, "ZeD(no steal)",
                            Table::fmtInt(f_nat), Table::fmtInt(f_bal),
                            gainCell(f_nat, f_bal)});
        }
        return rows;
    };
    t.note = "Takeaway: Canon's K-sliced Gustavson dataflow spreads "
             "every output row\nacross all orchestrators, so row "
             "order barely matters -- the insensitivity\nthe paper "
             "banks on when it drops ZeD's preprocessing from the "
             "comparison.\nRow order only matters for row-granular "
             "scheduling without stealing.";
    bench.add(std::move(t));
    return bench;
}

} // namespace bench
} // namespace canon
