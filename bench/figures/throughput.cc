/**
 * @file
 * Microbenchmarks of the simulator itself: cycle throughput of the
 * Canon fabric, the orchestrator's LUT path, the systolic reference
 * simulator, and the CGRA mapper. Useful for keeping the cycle-level
 * substrate fast enough for the figure benches (the ROADMAP's
 * hot-path item).
 *
 * Unlike the figure benches, the cell values here are wall-clock
 * rates, so they are *not* reproducible byte-for-byte across runs or
 * hosts -- only the table structure is. The binary therefore defaults
 * to --jobs 1: timing rows that share the machine contend and
 * undercount. Raise --jobs only to smoke-test the harness.
 */

#include "figures.hh"

#include <chrono>

#include "baselines/cgra.hh"
#include "baselines/systolic.hh"
#include "common/table.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"
#include "workloads/polybench.hh"

namespace canon
{
namespace bench
{

namespace
{

struct Measurement
{
    int iterations = 0;
    double seconds = 0.0;
    double work = 0.0; //!< work units completed (for the rate column)
    const char *unit = "";
};

template <typename Fn>
Measurement
timeLoop(int iterations, const char *unit, Fn &&step)
{
    Measurement m;
    m.iterations = iterations;
    m.unit = unit;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i)
        m.work += step();
    const auto stop = std::chrono::steady_clock::now();
    m.seconds =
        std::chrono::duration<double>(stop - start).count();
    return m;
}

Measurement
canonSpmmThroughput(double sparsity)
{
    CanonConfig cfg;
    Rng rng(1);
    const auto a = randomSparse(128, 256, sparsity, rng);
    const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);
    const auto mapping = mapSpmm(CsrMatrix::fromDense(a), b, cfg);
    return timeLoop(8, "sim-cycles/s", [&]() {
        CanonFabric fabric(cfg);
        fabric.load(mapping);
        return static_cast<double>(fabric.run());
    });
}

Measurement
canonSpmm16x16Throughput()
{
    // The scaling case: 4x the components of the paper fabric, the
    // shape the tick-schedule work is sized against.
    CanonConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    Rng rng(1);
    const auto a = randomSparse(256, 256, 0.5, rng);
    const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);
    const auto mapping = mapSpmm(CsrMatrix::fromDense(a), b, cfg);
    return timeLoop(4, "sim-cycles/s", [&]() {
        CanonFabric fabric(cfg);
        fabric.load(mapping);
        return static_cast<double>(fabric.run());
    });
}

Measurement
canonResident2048Throughput()
{
    // The resident-row scaling point: 2048 in-flight output rows on
    // a 16x16 fabric under --spad-flush adaptive, the regime the
    // lifted proxy cap (kMinProxyRowsAdaptive) runs in. Work/Iter
    // pins the flattened cost curve: a drift here means the adaptive
    // policy's cycle behaviour changed.
    CanonConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    cfg.spadFlush = SpadFlushPolicy::Adaptive;
    Rng rng(1);
    const auto a = randomSparse(2048, 128, 0.7, rng);
    const auto b = randomDense(128, cfg.cols * kSimdWidth, rng);
    const auto mapping = mapSpmm(CsrMatrix::fromDense(a), b, cfg);
    return timeLoop(4, "sim-cycles/s", [&]() {
        CanonFabric fabric(cfg);
        fabric.load(mapping);
        return static_cast<double>(fabric.run());
    });
}

Measurement
systolicThroughput(int n)
{
    Rng rng(2);
    const auto a = randomDense(n, n, rng);
    const auto b = randomDense(n, n, rng);
    SystolicConfig cfg{8, 8, SparsitySupport::Dense};
    return timeLoop(100, "runs/s", [&]() {
        SystolicSim sim(cfg);
        sim.run(a, b);
        return 1.0;
    });
}

Measurement
lutCompileThroughput()
{
    return timeLoop(50, "compiles/s", [&]() {
        auto prog = buildSpmmProgram();
        // Touch the LUT so the build cannot be elided.
        (void)prog->lut().lookup(0);
        return 1.0;
    });
}

Measurement
cgraMapperThroughput()
{
    const auto suite = polybenchSuite();
    CgraMapper mapper;
    return timeLoop(10, "kernel-maps/s", [&]() {
        double mapped = 0.0;
        for (const auto &k : suite) {
            (void)mapper.map(k.body, k.recMii);
            mapped += 1.0;
        }
        return mapped;
    });
}

} // namespace

FigureBench
simThroughputBench()
{
    FigureBench bench("bench_sim_throughput");
    bench.defaultJobs(1); // timing rows must not contend by default

    FigureTable t;
    t.title = "Simulator throughput microbenchmarks";
    // Work/Iter is the deterministic column: simulated cycles (or
    // completed units) per iteration. CI compares it exactly while
    // the wall-clock Rate column only gates large regressions.
    t.header = {"Benchmark", "Iters", "Work/Iter",
                "Wall(ms)",  "Rate",  "Unit"};
    t.csvName = "sim_throughput.csv";
    t.grid.axis("case",
                {"canon-spmm-s10", "canon-spmm-s50", "canon-spmm-s90",
                 "canon-spmm-16x16", "canon-resident-2048",
                 "systolic-16", "systolic-32", "lut-compile",
                 "cgra-mapper"});
    t.emit = [](const FigurePoint &p) -> FigureRows {
        Measurement m;
        switch (p.digits[0]) {
          case 0:
            m = canonSpmmThroughput(0.10);
            break;
          case 1:
            m = canonSpmmThroughput(0.50);
            break;
          case 2:
            m = canonSpmmThroughput(0.90);
            break;
          case 3:
            m = canonSpmm16x16Throughput();
            break;
          case 4:
            m = canonResident2048Throughput();
            break;
          case 5:
            m = systolicThroughput(16);
            break;
          case 6:
            m = systolicThroughput(32);
            break;
          case 7:
            m = lutCompileThroughput();
            break;
          default:
            m = cgraMapperThroughput();
            break;
        }
        const double rate =
            m.seconds > 0.0 ? m.work / m.seconds : 0.0;
        const double work_per_iter =
            m.iterations > 0 ? m.work / m.iterations : 0.0;
        return {{p.value("case"), std::to_string(m.iterations),
                 Table::fmtInt(
                     static_cast<std::uint64_t>(work_per_iter)),
                 Table::fmt(m.seconds * 1e3, 2),
                 Table::fmtInt(static_cast<std::uint64_t>(rate)),
                 m.unit}};
    };
    t.note = "Rates are wall-clock measurements: compare across "
             "commits on one idle\nhost, not across machines. Run "
             "with the default --jobs 1 for honest numbers.";
    bench.add(std::move(t));
    return bench;
}

} // namespace bench
} // namespace canon
