/**
 * @file
 * The cross-architecture comparison figures: Figure 12 (normalized
 * performance across the twelve workload classes), Figure 13
 * (normalized perf/W over the same matrix), and Figure 14 (EDP on
 * real ML models). "X" marks architectures that cannot run a
 * workload, exactly as in the paper.
 *
 * Qualitative shapes to check against the paper: near-parity on GEMM
 * with systolic collapse under sparsity and Canon ahead on window
 * attention (Fig. 12); the systolic array leading on pure dense GEMM
 * perf/W, Canon's generality tax (Fig. 13); minimal fragility across
 * kernel *mixtures* (Fig. 14, lower EDP is better, log scale in the
 * paper).
 */

#include "figures.hh"

#include "bench_util.hh"

namespace canon
{
namespace bench
{

namespace
{

/** One Figure 12/13 row: build the case, render one cell per arch. */
FigureRows
workloadMatrixRow(std::size_t case_index, bool perf_per_watt)
{
    const ArchSuite suite;
    const WorkloadCase c = figure12Case(case_index, suite);
    const EnergyModel energy;

    std::vector<std::string> row = {c.label};
    for (const auto &a : archOrder())
        row.push_back(cell(
            perf_per_watt
                ? normalizedPerfPerWatt(c.results, a, energy)
                : normalizedPerformance(c.results, a)));
    return {std::move(row)};
}

std::vector<std::string>
archHeader(const char *first)
{
    std::vector<std::string> header = {first};
    for (const auto &a : archOrder())
        header.push_back(archLabel(a));
    return header;
}

} // namespace

FigureBench
figure12Bench()
{
    FigureBench bench("bench_fig12_performance");

    FigureTable t;
    t.title = "Figure 12: normalized performance (baseline / Canon; "
              "X = cannot run)";
    t.header = archHeader("Workload");
    t.csvName = "fig12_performance.csv";
    t.grid.axis("workload", figure12Labels());
    t.emit = [](const FigurePoint &p) {
        return workloadMatrixRow(p.digits[0], false);
    };
    bench.add(std::move(t));
    return bench;
}

FigureBench
figure13Bench()
{
    FigureBench bench("bench_fig13_perfwatt");

    FigureTable t;
    t.title = "Figure 13: normalized perf/W (baseline / Canon; X = "
              "cannot run)";
    t.header = archHeader("Workload");
    t.csvName = "fig13_perfwatt.csv";
    t.grid.axis("workload", figure12Labels());
    t.emit = [](const FigurePoint &p) {
        return workloadMatrixRow(p.digits[0], true);
    };
    bench.add(std::move(t));
    return bench;
}

FigureBench
figure14Bench()
{
    FigureBench bench("bench_fig14_edp");

    // The Figure 14 model specs in paper order; the seed follows the
    // original serial loop (300, 310, ...), keyed to the grid index
    // so any worker count and shard reproduces it.
    static const std::vector<ModelSpec> models = {
        resnet50Conv(0.5),   llama8bMlp(0.0),  llama8bMlp(0.7),
        llama8bAttn(0.7),    mistral7bMlp(0.0), mistral7bMlp(0.7),
        mistral7bAttn(),     longformerAttn(),
    };

    std::vector<std::string> names;
    for (const auto &spec : models)
        names.push_back(spec.name);

    FigureTable t;
    t.title = "Figure 14: EDP normalized to Canon (lower is better; "
              "X = cannot run)";
    t.header = archHeader("Model");
    t.csvName = "fig14_edp.csv";
    t.grid.axis("model", names);
    t.emit = [](const FigurePoint &p) -> FigureRows {
        const ModelSpec &spec = models[p.digits[0]];
        const std::uint64_t seed = 300 + 10 * p.digits[0];

        const ArchSuite suite;
        const EnergyModel energy;
        const auto results = suite.model(spec, seed);
        const double canon_edp =
            energy.evaluate(results.at("canon")).edp();

        std::vector<std::string> row = {spec.name};
        for (const auto &a : archOrder()) {
            auto it = results.find(a);
            if (it == results.end()) {
                row.push_back("X");
                continue;
            }
            const double edp = energy.evaluate(it->second).edp();
            row.push_back(Table::fmt(edp / canon_edp, 2));
        }
        return {std::move(row)};
    };
    bench.add(std::move(t));
    return bench;
}

} // namespace bench
} // namespace canon
