/**
 * @file
 * The sensitivity figures: Figure 15 (utilization vs array/problem
 * scale and arithmetic intensity, with a fixed-intensity control),
 * Figure 16 (off-chip bandwidth required to hold the compute
 * roofline across SRAM sizes), and Figure 17 (scratchpad-depth
 * sweep). Every row derives its RNG seed from its own grid point, so
 * the grids run on the worker pool in any order.
 */

#include "figures.hh"

#include <cmath>

#include "common/table.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "mem/main_memory.hh"
#include "sparse/generate.hh"
#include "workloads/canon_runner.hh"

namespace canon
{
namespace bench
{

FigureBench
figure15Bench()
{
    FigureBench bench("bench_fig15_scalability");

    // The fabric and the SpMM problem scale together (1x-8x); at each
    // scale several sparsity levels produce different arithmetic
    // intensities. The paper's claim to reproduce: utilization tracks
    // arithmetic intensity, with no clear correlation to scale.
    FigureTable main_t;
    main_t.title = "Figure 15: compute utilization vs array/problem "
                   "scale and arithmetic intensity";
    main_t.header = {"Scale", "PEs", "Sparsity",
                     "ArithIntensity(ops/elem)", "Utilization"};
    main_t.csvName = "fig15_scalability.csv";
    main_t.grid.axis("scale", {"1", "2", "3", "4", "5", "6", "7", "8"})
        .axis("sparsity", {"0.30", "0.60", "0.90"});
    main_t.emit = [](const FigurePoint &p) -> FigureRows {
        const int scale = p.integer("scale");
        const double sp = p.number("sparsity");

        CanonConfig cfg;
        cfg.rows = 8;
        cfg.cols = 8 * scale; // scale the array out column-wise
        CanonRunner runner(cfg);

        const std::int64_t m = 96;
        const std::int64_t k = 32 * scale * 8 / 8 * 8; // K scales too
        const std::int64_t n = cfg.cols * kSimdWidth;

        Rng rng(static_cast<std::uint64_t>(scale) * 100 +
                static_cast<std::uint64_t>(sp * 10));
        const auto a = randomSparse(static_cast<int>(m),
                                    static_cast<int>(k), sp, rng);
        const auto b = randomDense(static_cast<int>(k),
                                   static_cast<int>(n), rng);
        const auto csr = CsrMatrix::fromDense(a);

        const auto prof = runner.spmmExact(csr, b);
        const auto lanes =
            static_cast<std::uint64_t>(cfg.numPes() * kSimdWidth);
        // Ops per fetched element: 2*N MACs per nnz over the
        // coordinate+value bytes.
        const double ai = 2.0 * static_cast<double>(csr.nnz()) *
                          static_cast<double>(n) /
                          (static_cast<double>(csr.nnz()) * 3.0 +
                           static_cast<double>(m) * 2.0);
        return {{std::to_string(scale) + "x",
                 std::to_string(cfg.numPes()), Table::fmt(sp, 2),
                 Table::fmt(ai, 1),
                 Table::fmt(prof.utilization(lanes), 3)}};
    };
    bench.add(std::move(main_t));

    // Control experiment: hold the workload's arithmetic intensity
    // fixed (same K, same sparsity) while the array scales -- the
    // paper's claim is that utilization then stays flat.
    FigureTable control_t;
    control_t.title = "Figure 15 (control): fixed arithmetic intensity "
                      "across scales";
    control_t.header = {"Scale", "PEs", "Sparsity", "Utilization"};
    control_t.csvName = "fig15_fixed_ai.csv";
    control_t.grid.axis("scale", {"1", "2", "4", "8"})
        .axis("sparsity", {"0.30", "0.60"});
    control_t.emit = [](const FigurePoint &p) -> FigureRows {
        const int scale = p.integer("scale");
        const double sp = p.number("sparsity");

        CanonConfig cfg;
        cfg.rows = 8;
        cfg.cols = 8 * scale;
        CanonRunner runner(cfg);
        const std::int64_t k = 256;
        const std::int64_t n = cfg.cols * kSimdWidth;

        Rng rng(900 + scale * 10 + static_cast<std::uint64_t>(sp * 10));
        // Deep M so fill/drain fractions do not masquerade as a
        // scale effect.
        const auto a = randomSparse(256, static_cast<int>(k), sp, rng);
        const auto b = randomDense(static_cast<int>(k),
                                   static_cast<int>(n), rng);
        const auto prof = runner.spmmExact(CsrMatrix::fromDense(a), b);
        return {{std::to_string(scale) + "x",
                 std::to_string(cfg.numPes()), Table::fmt(sp, 2),
                 Table::fmt(prof.utilization(static_cast<std::uint64_t>(
                                cfg.numPes() * kSimdWidth)),
                            3)}};
    };
    control_t.note =
        "Expected shape: in the control table, utilization is flat in "
        "scale at\nfixed sparsity (fixed arithmetic intensity); in the "
        "main table it tracks\narithmetic intensity, not array size.";
    bench.add(std::move(control_t));
    return bench;
}

FigureBench
figure16Bench()
{
    FigureBench bench("bench_fig16_bandwidth");

    // Schedule: dense-stationary tiling (Section 6.4) -- B resident
    // in whatever SRAM fits, the sparse A re-streamed once per B
    // tile, C written back once. Compute time comes from utilization
    // measured on the cycle simulator at each sparsity. Workload:
    // SpMM with B of 1024x1024 INT8 (1 MB) so that only the largest
    // SRAM holds it whole; M chosen for a deep stream.
    static const std::vector<double> sram_kb = {72, 144, 288, 576,
                                                1152};

    FigureTable t;
    t.title = "Figure 16: required bandwidth (GB/s) to hit the compute "
              "roofline";
    t.header = {"Sparsity", "AI(ops/B)"};
    for (double s : sram_kb)
        t.header.push_back("SRAM=" + Table::fmt(s, 0) + "KB");
    t.csvName = "fig16_bandwidth.csv";
    t.grid.axis("sparsity", {"0.05", "0.2", "0.35", "0.5", "0.65",
                             "0.8", "0.9", "0.95"});
    t.emit = [](const FigurePoint &p) -> FigureRows {
        const double sp = p.number("sparsity");
        const auto cfg = CanonConfig::paper();
        CanonRunner runner(cfg);
        const std::int64_t m = 4096, k = 1024, n = 1024;

        // Measure utilization on a proxy simulation at this sparsity.
        const auto prof =
            runner.spmmShape(256, k, cfg.cols * kSimdWidth, sp, 77);
        const double util =
            std::max(prof.utilization(static_cast<std::uint64_t>(
                         cfg.numPes() * kSimdWidth)),
                     0.05);

        const double nnz = static_cast<double>(m) * k * (1.0 - sp);
        const double ops = 2.0 * nnz * n; // mul + add per MAC
        const double compute_cycles =
            ops / (2.0 * cfg.numMacs() * util);
        const double seconds = compute_cycles / (cfg.clockGhz * 1e9);

        std::vector<std::string> row = {Table::fmt(sp, 2), ""};
        bool ai_set = false;
        for (double s : sram_kb) {
            const double b_bytes = static_cast<double>(k) * n;
            const double passes = std::ceil(b_bytes / (s * 1024.0));
            // B once, A (3 B/nnz) re-streamed per pass, C out (4 B).
            const double traffic = b_bytes + passes * nnz * 3.0 +
                                   static_cast<double>(m) * n * 4.0;
            if (!ai_set) {
                row[1] = Table::fmt(ops / traffic, 0);
                ai_set = true; // report AI at the smallest SRAM
            }
            row.push_back(Table::fmt(traffic / seconds / 1e9, 1));
        }
        return {std::move(row)};
    };
    t.note = "Reference devices: LPDDR5X 16x = 17 GB/s (design point "
             "B, Table 1);\nLPDDR5X 32x = 34 GB/s (design point A). "
             "Larger SRAM flattens the curve\n(design point C at high "
             "arithmetic intensity).";
    bench.add(std::move(t));
    return bench;
}

FigureBench
figure17Bench()
{
    FigureBench bench("bench_fig17_scratchpad");

    // Impact of scratchpad depth {1,4,8,16,32,64} on compute
    // utilization across sparsity ranges. The paper's shape: deeper
    // buffers help at >=60 % sparsity (10-20 % utilization over the
    // single-register baseline around depth 16), while very deep
    // buffers stop paying.
    static const std::vector<int> depths = {1, 4, 8, 16, 32, 64};

    FigureTable t;
    t.title = "Figure 17: compute utilization vs scratchpad depth";
    t.header = {"Sparsity"};
    for (int d : depths)
        t.header.push_back("depth=" + std::to_string(d));
    t.csvName = "fig17_scratchpad.csv";
    t.grid.axis("sparsity", {"0.05", "0.15", "0.25", "0.35", "0.45",
                             "0.55", "0.65", "0.75", "0.85"});
    t.emit = [](const FigurePoint &p) -> FigureRows {
        const double sp = p.number("sparsity");
        std::vector<std::string> row = {Table::fmt(sp, 2)};
        for (int d : depths) {
            CanonConfig cfg;
            cfg.spadEntries = d;
            Rng rng(static_cast<std::uint64_t>(sp * 100) + 7);
            const auto a = randomSparse(512, 256, sp, rng);
            const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);
            CanonFabric fabric(cfg);
            fabric.load(mapSpmm(CsrMatrix::fromDense(a), b, cfg));
            fabric.run();
            row.push_back(Table::fmt(fabric.utilization(), 3));
        }
        return {std::move(row)};
    };
    bench.add(std::move(t));
    return bench;
}

} // namespace bench
} // namespace canon
