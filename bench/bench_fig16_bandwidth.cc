/**
 * @file
 * Figure 16: off-chip bandwidth required to keep Canon at its compute
 * roofline, versus arithmetic intensity (sparsity rising left to
 * right), for on-chip SRAM sizes 72 KB .. 1152 KB. Reference lines:
 * LPDDR5X x16 (17 GB/s, Table 1's configuration = design point B) and
 * x32 (34 GB/s).
 *
 * Schedule: dense-stationary tiling (Section 6.4) -- B resident in
 * whatever SRAM fits, the sparse A re-streamed once per B tile, C
 * written back once. Compute time comes from utilization measured on
 * the cycle simulator at each sparsity.
 */

#include <cmath>

#include "common/table.hh"
#include "mem/main_memory.hh"
#include "workloads/canon_runner.hh"

using namespace canon;

int
main()
{
    setQuiet(true);
    const auto cfg = CanonConfig::paper();
    CanonRunner runner(cfg);

    // Workload: SpMM with B of 1024x1024 INT8 (1 MB) so that only the
    // largest SRAM holds it whole; M chosen for a deep stream.
    const std::int64_t m = 4096, k = 1024, n = 1024;
    const std::vector<double> sram_kb = {72, 144, 288, 576, 1152};

    Table t("Figure 16: required bandwidth (GB/s) to hit the compute "
            "roofline");
    std::vector<std::string> header = {"Sparsity", "AI(ops/B)"};
    for (double s : sram_kb)
        header.push_back("SRAM=" + Table::fmt(s, 0) + "KB");
    t.header(header);

    for (double sp : {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95}) {
        // Measure utilization on a proxy simulation at this sparsity.
        const auto prof = runner.spmmShape(
            256, k, cfg.cols * kSimdWidth, sp, 77);
        const double util = std::max(
            prof.utilization(static_cast<std::uint64_t>(
                cfg.numPes() * kSimdWidth)),
            0.05);

        const double nnz = static_cast<double>(m) * k * (1.0 - sp);
        const double ops = 2.0 * nnz * n; // mul + add per MAC
        const double compute_cycles =
            ops / (2.0 * cfg.numMacs() * util);
        const double seconds = compute_cycles / (cfg.clockGhz * 1e9);

        std::vector<std::string> row = {
            Table::fmt(sp, 2), ""};
        bool ai_set = false;
        for (double s : sram_kb) {
            const double b_bytes = static_cast<double>(k) * n;
            const double passes =
                std::ceil(b_bytes / (s * 1024.0));
            // B once, A (3 B/nnz) re-streamed per pass, C out (4 B).
            const double traffic =
                b_bytes + passes * nnz * 3.0 +
                static_cast<double>(m) * n * 4.0;
            if (!ai_set) {
                row[1] = Table::fmt(ops / traffic, 0);
                ai_set = true; // report AI at the smallest SRAM
            }
            row.push_back(Table::fmt(traffic / seconds / 1e9, 1));
        }
        t.addRow(row);
    }
    t.print();
    t.writeCsv("fig16_bandwidth.csv");

    std::puts("\nReference devices: LPDDR5X 16x = 17 GB/s (design "
              "point B, Table 1);\nLPDDR5X 32x = 34 GB/s (design "
              "point A). Larger SRAM flattens the curve\n(design "
              "point C at high arithmetic intensity).");
    return 0;
}
