/**
 * @file
 * Figure 11: runtime power breakdown of Canon's PEs (averaged) for
 * GEMM and sparse CNN/attention workloads at the S1/S2/S3 sparsity
 * ranges, plus the data-driven FSM state-transition counts per range.
 *
 * Workloads mirror the paper's labels: ResNet50-* are
 * activation-sparse conv GEMMs (SpMM), Attention-* are unstructured
 * sparse attention scores (SDDMM). The systolic-array GEMM bar is the
 * reference on the left of the figure.
 */

#include "baselines/systolic.hh"
#include "common/table.hh"
#include "power/energy.hh"
#include "workloads/canon_runner.hh"

using namespace canon;

namespace
{

struct Row
{
    std::string label;
    ExecutionProfile profile;
};

} // namespace

int
main()
{
    setQuiet(true);
    const auto cfg = CanonConfig::paper();
    CanonRunner runner(cfg);
    EnergyModel energy;

    const double s1 = 0.15, s2 = 0.45, s3 = 0.80;

    std::vector<Row> rows;
    {
        SystolicModel sys(SystolicConfig{});
        auto p = sys.gemm(784, 1152, 128);
        rows.push_back({"Systolic GEMM (ref)", p});
    }
    rows.push_back({"Canon GEMM", runner.gemmShape(784, 1152, 128, 1)});
    rows.push_back(
        {"Resnet50-S1", runner.spmmShape(784, 1152, 128, s1, 2)});
    rows.push_back(
        {"Attention-S1", runner.sddmmShape(512, 64, 512, s1, 3)});
    rows.push_back(
        {"Resnet50-S2", runner.spmmShape(784, 1152, 128, s2, 4)});
    rows.push_back(
        {"Attention-S2", runner.sddmmShape(512, 64, 512, s2, 5)});
    rows.push_back(
        {"Resnet50-S3", runner.spmmShape(784, 1152, 128, s3, 6)});
    rows.push_back(
        {"Attention-S3", runner.sddmmShape(512, 64, 512, s3, 7)});

    Table t("Figure 11: runtime power breakdown of Canon's PEs "
            "(mW per PE, averaged)");
    t.header({"Workload", "DataMem", "Spad-Read", "Spad-Write",
              "Compute", "Ctrl&Routing", "Total/PE"});
    for (const auto &row : rows) {
        const auto r = energy.evaluate(row.profile);
        const double pes = row.profile.peCount
                               ? static_cast<double>(row.profile.peCount)
                               : 64.0;
        auto mw = [&](const std::string &cat) {
            return Table::fmt(r.category(cat) /
                                  static_cast<double>(r.cycles) / pes,
                              3);
        };
        const double total_mw =
            r.totalPj / static_cast<double>(r.cycles) / pes;
        t.addRow({row.label, mw("dataMem"), mw("spadRead"),
                  mw("spadWrite"), mw("compute"), mw("controlRouting"),
                  Table::fmt(total_mw, 3)});
    }
    t.print();
    t.writeCsv("fig11_power.csv");

    // FSM state transitions per sparsity range (paper: S1 1.94e7,
    // S2 3.29e7, S3 9.77e7 across its full workload set). Absolute
    // counts depend on the workload set's size, so we also report
    // transitions normalized per million useful lane-MACs -- the
    // data-driven decision *rate*, which is what grows with
    // irregularity.
    Table ft("Figure 11 (right): data-driven FSM state transitions");
    ft.header({"Sparsity range", "Transitions", "Per 1M lane-MACs",
               "Paper (absolute)"});
    auto transitions = [&](double sp, std::uint64_t seed) {
        const auto a = runner.spmmShape(784, 1152, 128, sp, seed);
        const auto b = runner.sddmmShape(512, 64, 512, sp, seed + 1);
        const auto trans =
            a.get("stateTransitions") + b.get("stateTransitions");
        const auto macs = a.get("laneMacs") + b.get("laneMacs");
        return std::pair{trans, trans * 1'000'000 / macs};
    };
    const auto r1 = transitions(s1, 20);
    const auto r2 = transitions(s2, 22);
    const auto r3 = transitions(s3, 24);
    ft.addRow({"S1 (0-30%)", Table::fmtInt(r1.first),
               Table::fmtInt(r1.second), "1.94e7"});
    ft.addRow({"S2 (30-60%)", Table::fmtInt(r2.first),
               Table::fmtInt(r2.second), "3.29e7"});
    ft.addRow({"S3 (60-95%)", Table::fmtInt(r3.first),
               Table::fmtInt(r3.second), "9.77e7"});
    ft.print();
    ft.writeCsv("fig11_transitions.csv");
    return 0;
}
