#include "figure_spec.hh"

#include <exception>
#include <iostream>

#include "bench_util.hh"
#include "cache/key.hh"
#include "cache/payload.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "engine/engine.hh"
#include "engine/obs_report.hh"
#include "obs/collector.hh"
#include "runner/shard.hh"

namespace canon
{
namespace bench
{

// ---- FigurePoint ------------------------------------------------------

const std::string &
FigurePoint::value(const std::string &key) const
{
    for (const auto &[k, v] : coords)
        if (k == key)
            return v;
    fatal("figure point '", label, "' has no axis '", key, "'");
}

double
FigurePoint::number(const std::string &key) const
{
    const std::string &v = value(key);
    try {
        std::size_t pos = 0;
        const double d = std::stod(v, &pos);
        fatalIf(pos != v.size(), "trailing garbage");
        return d;
    } catch (const std::exception &) {
        fatal("axis '", key, "' value '", v, "' is not a number");
    }
}

int
FigurePoint::integer(const std::string &key) const
{
    const std::string &v = value(key);
    try {
        std::size_t pos = 0;
        const int i = std::stoi(v, &pos);
        fatalIf(pos != v.size(), "trailing garbage");
        return i;
    } catch (const std::exception &) {
        fatal("axis '", key, "' value '", v, "' is not an integer");
    }
}

// ---- FigureSpec -------------------------------------------------------

FigureSpec &
FigureSpec::axis(std::string key, std::vector<std::string> values)
{
    fatalIf(values.empty(), "figure axis '", key, "' has no values");
    for (const auto &a : axes_)
        fatalIf(a.key == key, "duplicate figure axis '", key, "'");
    axes_.push_back({std::move(key), std::move(values)});
    return *this;
}

std::size_t
FigureSpec::pointCount() const
{
    std::size_t n = 1;
    for (const auto &axis : axes_)
        n *= axis.values.size();
    return n;
}

std::vector<FigurePoint>
FigureSpec::expand() const
{
    std::vector<FigurePoint> points;
    points.reserve(pointCount());

    // Odometer over the axis value lists: the last axis is the least
    // significant digit, so it varies fastest (the SweepSpec order).
    std::vector<std::size_t> digit(axes_.size(), 0);
    for (;;) {
        FigurePoint p;
        p.index = points.size();
        p.digits = digit;
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const auto &axis = axes_[a];
            p.coords.emplace_back(axis.key, axis.values[digit[a]]);
            if (!p.label.empty())
                p.label += " ";
            p.label += axis.key + "=" + axis.values[digit[a]];
        }
        points.push_back(std::move(p));

        std::size_t a = axes_.size();
        while (a > 0) {
            --a;
            if (++digit[a] < axes_[a].values.size())
                break;
            digit[a] = 0;
            if (a == 0)
                return points;
        }
        if (axes_.empty())
            return points;
    }
}

// ---- FigureBench ------------------------------------------------------

FigureBench &
FigureBench::add(FigureTable table)
{
    fatalIf(table.header.empty(), "figure table '", table.title,
            "' has no header");
    fatalIf(!table.emit, "figure table '", table.title,
            "' has no emit function");
    tables_.push_back(std::move(table));
    return *this;
}

std::size_t
FigureBench::jobCount() const
{
    std::size_t n = 0;
    for (const auto &t : tables_)
        n += t.grid.pointCount();
    return n;
}

int
FigureBench::run(const BenchOptions &opt, std::ostream &out,
                 std::ostream &err) const
{
    setQuiet(true);

    // The job list: every table's grid, tables in declaration order.
    struct JobRef
    {
        std::size_t table;
        FigurePoint point;
    };
    std::vector<JobRef> jobs;
    jobs.reserve(jobCount());
    for (std::size_t t = 0; t < tables_.size(); ++t)
        for (auto &p : tables_[t].grid.expand())
            jobs.push_back({t, std::move(p)});

    const std::size_t total = jobs.size();
    const auto [first, last] =
        runner::shardRange(opt.common.shard, total);
    if (!opt.common.shard.whole()) {
        jobs = std::vector<JobRef>(
            jobs.begin() + static_cast<std::ptrdiff_t>(first),
            jobs.begin() + static_cast<std::ptrdiff_t>(last));
        out << name_ << ": " << jobs.size() << " of " << total
            << " jobs (shard " << opt.common.shard.label() << ")\n";
    }

    engine::Engine eng(
        engine::makeEngineConfig(opt.common, default_jobs_));
    if (std::string serr = eng.prepare(); !serr.empty()) {
        err << name_ << ": " << serr << "\n";
        return 1;
    }

    // Submit the shard as one payload batch: execution goes through
    // the payload codec on hit *and* miss, so a warm rerun renders
    // exactly the bytes the cold run rendered.
    //
    // When observability flags are on, each compute closure runs
    // under its own collector so the fabrics it constructs report
    // back; cache-hit points compute nothing and stay unobserved.
    const obs::ObsOptions &obs_opt = opt.common.obs;
    std::vector<std::shared_ptr<const obs::ScenarioObs>> job_obs(
        jobs.size());
    std::vector<engine::PayloadJob> batch;
    batch.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobRef &job = jobs[i];
        const FigureTable &table = tables_[job.table];
        std::function<std::string()> compute =
            [&table, &point = job.point] {
                return cache::encodeRows(table.emit(point));
            };
        if (obs_opt.enabled())
            compute = [compute = std::move(compute), &obs_opt,
                       &job_obs, i] {
                obs::Collector col(obs_opt);
                obs::ScopedCollector scope(col);
                std::string payload = compute();
                job_obs[i] = col.finish();
                return payload;
            };
        batch.push_back(
            {cache::figureKey(name_, table.title, job.point.label),
             std::move(compute)});
    }

    std::vector<std::string> payloads;
    try {
        payloads = eng.runPayloadBatch(batch);
    } catch (const std::exception &e) {
        err << name_ << ": " << e.what() << "\n";
        return 1;
    }

    std::vector<FigureRows> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!cache::decodeRows(payloads[i], results[i])) {
            err << name_ << ": corrupt cache entry for '"
                << jobs[i].point.label << "' in "
                << opt.common.cacheDir
                << " (rerun with --cache refresh)\n";
            return 1;
        }
    }

    // Render in declaration order; the job list is grouped by table
    // and ordered within it, so a linear scan assembles each table's
    // rows in expansion order.
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        const FigureTable &spec = tables_[t];
        Table table(spec.title);
        table.header(spec.header);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            if (jobs[j].table != t)
                continue;
            for (auto &row : results[j])
                table.addRow(std::move(row));
        }
        table.print(out);
        if (!spec.csvName.empty() &&
            !table.writeCsv(spec.csvName,
                            opt.common.shard.index == 0)) {
            err << name_ << ": cannot write CSV to " << spec.csvName
                << "\n";
            return 1;
        }
        if (!spec.note.empty())
            out << "\n" << spec.note << "\n";
    }

    if (obs_opt.enabled()) {
        std::vector<std::string> labels;
        labels.reserve(jobs.size());
        for (const JobRef &job : jobs)
            labels.push_back(tables_[job.table].title + ": " +
                             job.point.label);
        const engine::ObsReport rep = engine::ObsReport::buildPayload(
            obs_opt, labels, job_obs, eng.store());
        if (std::string oerr = rep.writeOutputs(); !oerr.empty()) {
            err << name_ << ": " << oerr << "\n";
            return 1;
        }
    }

    if (eng.store())
        out << name_ << ": " << eng.store()->statsLine() << "\n";
    return 0;
}

int
FigureBench::main(int argc, char **argv) const
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    BenchOptions opt;
    if (std::string perr = parseBenchArgs(args, opt); !perr.empty()) {
        std::cerr << name_ << ": " << perr << "\n\n"
                  << benchUsageText();
        return 2;
    }
    if (opt.showHelp) {
        std::cout << name_ << " -- figure bench on the shared sweep"
                              " runner\n\n"
                  << benchUsageText();
        return 0;
    }
    try {
        return run(opt, std::cout, std::cerr);
    } catch (const std::exception &e) {
        std::cerr << name_ << ": " << e.what() << "\n";
        return 1;
    }
}

} // namespace bench
} // namespace canon
