/**
 * @file
 * Table 1: the evaluated Canon configuration.
 */

#include "common/table.hh"
#include "core/config.hh"
#include "mem/main_memory.hh"
#include "orch/lut.hh"

using namespace canon;

int
main()
{
    const auto cfg = CanonConfig::paper();

    Table t("Table 1: Configuration of the evaluated Canon "
            "architecture");
    t.header({"Component", "Configuration"});
    t.addRow({"Array", std::to_string(cfg.rows) + "x" +
                           std::to_string(cfg.cols) + " " +
                           std::to_string(kSimdWidth) +
                           "-SIMD INT8 array (" +
                           std::to_string(cfg.numMacs()) + " MACs)"});
    t.addRow({"SRAM", std::to_string(cfg.dmemBytesPerPe() / 1024) +
                          "KB per PE; " +
                          std::to_string(cfg.totalSramBytes() / 1024) +
                          "KB overall (incl. orchestrator LUTs)"});
    t.addRow({"Scratchpad",
              "dual-port, " + std::to_string(cfg.spadEntries) +
                  " Vec4 entries (" +
                  std::to_string(cfg.spadBytesPerPe()) +
                  " B) per PE"});
    t.addRow({"Orchestrator",
              std::to_string(cfg.rows) + " orchestrators, 1 per PE "
                                         "row; " +
                  std::to_string(FsmLut::bitstreamBytes() / 1024) +
                  "KB LUT bitstream each"});
    t.addRow({"Main Memory", lpddr5x16().name + ", " +
                                 Table::fmt(lpddr5x16().bandwidthGBps,
                                            0) +
                                 " GB/s"});
    t.addRow({"Clock", Table::fmt(cfg.clockGhz, 0) + " GHz"});
    t.print();
    t.writeCsv("table1_config.csv");
    return 0;
}
