/**
 * @file
 * Shared helpers for the per-figure bench binaries: the common
 * --jobs/--shard CLI, the Figure 12/13 workload matrix, normalization
 * against Canon, and pretty-printing conventions ("X" marks
 * architectures that cannot run a workload, exactly as in the paper's
 * figures).
 */

#ifndef CANON_BENCH_BENCH_UTIL_HH
#define CANON_BENCH_BENCH_UTIL_HH

#include <optional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "figure_spec.hh"
#include "power/energy.hh"
#include "workloads/polybench.hh"
#include "workloads/suite.hh"

namespace canon
{
namespace bench
{

/** The architecture columns of Figures 12/13, in paper order. */
inline const std::vector<std::string> &
archOrder()
{
    static const std::vector<std::string> order = {
        "systolic", "systolic24", "zed", "cgra", "canon"};
    return order;
}

inline const char *
archLabel(const std::string &a)
{
    if (a == "systolic")
        return "Systolic";
    if (a == "systolic24")
        return "Systolic(2:4)";
    if (a == "zed")
        return "ZeD";
    if (a == "cgra")
        return "CGRA";
    return "Canon";
}

/**
 * Parse a figure bench's argument vector (--jobs N, --shard I/N,
 * --help; both "--key value" and "--key=value" spellings). Returns an
 * empty string on success, otherwise the error message. This is the
 * one CLI grammar every bench binary shares.
 */
std::string parseBenchArgs(const std::vector<std::string> &args,
                           BenchOptions &out);

/** The shared --jobs/--shard usage text. */
const char *benchUsageText();

/** One x-axis entry of Figures 12/13. */
struct WorkloadCase
{
    std::string label;
    CaseResult results; //!< absent arch => "X"
};

/** The twelve x-axis labels of Figures 12/13, in paper order. */
const std::vector<std::string> &figure12Labels();

/**
 * Build x-axis entry @p index of Figures 12/13. Entries are
 * independent (each derives its RNG seeds from its own index), so
 * the grid can run on the worker pool in any order.
 */
WorkloadCase figure12Case(std::size_t index, const ArchSuite &suite);

/** Build the full Figure 12/13 workload matrix serially. */
std::vector<WorkloadCase> buildFigure12Cases(const ArchSuite &suite);

/** cycles(canon) / cycles(arch): >1 means arch is faster. */
inline std::optional<double>
normalizedPerformance(const CaseResult &r, const std::string &arch)
{
    auto it = r.find(arch);
    if (it == r.end())
        return std::nullopt;
    return static_cast<double>(r.at("canon").cycles) /
           static_cast<double>(it->second.cycles);
}

/** energy(canon) / energy(arch): same work, so this is perf/W. */
inline std::optional<double>
normalizedPerfPerWatt(const CaseResult &r, const std::string &arch,
                      const EnergyModel &energy)
{
    auto it = r.find(arch);
    if (it == r.end())
        return std::nullopt;
    const double canon_j =
        energy.evaluate(r.at("canon")).totalJoules();
    const double arch_j = energy.evaluate(it->second).totalJoules();
    return canon_j / arch_j;
}

inline std::string
cell(const std::optional<double> &v, int prec = 2)
{
    return v ? Table::fmt(*v, prec) : "X";
}

} // namespace bench
} // namespace canon

#endif // CANON_BENCH_BENCH_UTIL_HH
