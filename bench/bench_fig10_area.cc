/**
 * @file
 * Figure 10: area breakdown of Canon versus the systolic array.
 * Paper shares: Canon 58/13/16/5/8 % (data memory / scratchpad /
 * compute / routing / control), systolic 83/17 %.
 */

#include "common/table.hh"
#include "power/area.hh"

using namespace canon;

namespace
{

void
printBreakdown(const AreaBreakdown &b, const char *title,
               const std::map<std::string, double> &paper)
{
    Table t(title);
    t.header({"Component", "mm2", "Share", "Paper"});
    for (const auto &[name, mm2] : b.componentsMm2) {
        auto it = paper.find(name);
        t.addRow({name, Table::fmt(mm2, 4),
                  Table::fmt(b.share(name) * 100.0, 1) + "%",
                  it != paper.end()
                      ? Table::fmt(it->second * 100.0, 0) + "%"
                      : "-"});
    }
    t.addRow({"TOTAL", Table::fmt(b.total(), 4), "100%", "-"});
    t.print();
}

} // namespace

int
main()
{
    AreaModel model;

    printBreakdown(model.canon(),
                   "Figure 10a: Canon area breakdown (8x8, 4KB/PE)",
                   {{"dataMem", 0.58},
                    {"spad", 0.13},
                    {"compute", 0.16},
                    {"routing", 0.05},
                    {"control", 0.08}});

    printBreakdown(model.systolic(),
                   "Figure 10b: Systolic array area breakdown",
                   {{"dataMem", 0.83}, {"compute", 0.17}});

    const double overhead =
        model.canon().total() / model.systolic().total() - 1.0;
    Table t("Figure 10: overhead for generality");
    t.header({"Metric", "Measured", "Paper"});
    t.addRow({"Canon vs systolic area",
              "+" + Table::fmt(overhead * 100.0, 1) + "%", "+30%"});
    t.print();
    t.writeCsv("fig10_area.csv");
    return 0;
}
