/**
 * @file
 * Row-reorganization ablation. Section 5 excludes ZeD's
 * row-reordering preprocessing from the comparison "as the same can
 * be applied to Canon"; this bench applies it to both and quantifies
 * it: balanced (snake) row order vs the natural order on skewed
 * inputs. Canon benefits when heavy rows would otherwise cluster
 * inside one buffer window; ZeD benefits at its row-granular
 * scheduling.
 */

#include "baselines/zed.hh"
#include "common/table.hh"
#include "core/fabric.hh"
#include "kernels/spmm.hh"
#include "sparse/generate.hh"
#include "sparse/preprocess.hh"
#include "sparse/reference.hh"

using namespace canon;

namespace
{

Cycle
canonCycles(const CsrMatrix &a, const DenseMatrix &b,
            const CanonConfig &cfg)
{
    CanonFabric fabric(cfg);
    fabric.load(mapSpmm(a, b, cfg));
    return fabric.run();
}

std::uint64_t
zedCycles(const CsrMatrix &a, int n)
{
    return ZedModel{}.spmm(a, n).cycles;
}

} // namespace

int
main()
{
    setQuiet(true);
    const auto cfg = CanonConfig::paper();
    Rng rng(11);

    Table t("Row-reorganization preprocessing (Section 5 note)");
    t.header({"Input", "Arch", "Natural order", "Balanced order",
              "Gain"});

    for (auto [label, a_dense] :
         {std::pair<const char *, DenseMatrix>{
              "bimodal 0.55/0.95",
              randomSparseBimodal(512, 256, 0.55, 0.95, rng)},
          {"uniform 0.75", randomSparse(512, 256, 0.75, rng)}}) {
        const auto a = CsrMatrix::fromDense(a_dense);
        const auto perm = balancedRowOrder(a);
        const auto a_bal = permuteRows(a, perm);
        const auto b = randomDense(256, cfg.cols * kSimdWidth, rng);

        // Sanity: permuted execution yields the permuted result.
        {
            CanonFabric fabric(cfg);
            fabric.load(mapSpmm(a_bal, b, cfg));
            fabric.run();
            fatalIf(perm.unpermute(fabric.result()) !=
                        reference::spmm(a, b),
                    "row reorder changed the result");
        }

        const auto c_nat = canonCycles(a, b, cfg);
        const auto c_bal = canonCycles(a_bal, b, cfg);
        t.addRow({label, "Canon", Table::fmtInt(c_nat),
                  Table::fmtInt(c_bal),
                  Table::fmt((1.0 - static_cast<double>(c_bal) /
                                        static_cast<double>(c_nat)) *
                                 100.0,
                             1) +
                      "%"});

        const auto z_nat = zedCycles(a, cfg.cols * kSimdWidth);
        const auto z_bal = zedCycles(a_bal, cfg.cols * kSimdWidth);
        t.addRow({label, "ZeD", Table::fmtInt(z_nat),
                  Table::fmtInt(z_bal),
                  Table::fmt((1.0 - static_cast<double>(z_bal) /
                                        static_cast<double>(z_nat)) *
                                 100.0,
                             1) +
                      "%"});

        // Where reordering actually matters: row-granular scheduling
        // *without* work stealing.
        ZedConfig no_steal;
        no_steal.workStealing = false;
        ZedModel fixed(no_steal);
        const auto f_nat =
            fixed.spmm(a, cfg.cols * kSimdWidth).cycles;
        const auto f_bal =
            fixed.spmm(a_bal, cfg.cols * kSimdWidth).cycles;
        t.addRow({label, "ZeD(no steal)", Table::fmtInt(f_nat),
                  Table::fmtInt(f_bal),
                  Table::fmt((1.0 - static_cast<double>(f_bal) /
                                        static_cast<double>(f_nat)) *
                                 100.0,
                             1) +
                      "%"});
    }
    t.print();
    t.writeCsv("ablation_row_reorder.csv");

    std::puts("\nTakeaway: Canon's K-sliced Gustavson dataflow spreads "
              "every output row\nacross all orchestrators, so row "
              "order barely matters -- the insensitivity\nthe paper "
              "banks on when it drops ZeD's preprocessing from the "
              "comparison.\nRow order only matters for row-granular "
              "scheduling without stealing.");
    return 0;
}
