/**
 * @file
 * Figure 9: the feature ablation expressed as area deltas between
 * Canon and each baseline, derived from the component census of the
 * area model. Paper values: +30 % vs systolic, +9 % vs ZeD, -7 % vs
 * CGRA.
 */

#include "common/table.hh"
#include "power/area.hh"

using namespace canon;

int
main()
{
    AreaModel model;
    const auto canon_b = model.canon();
    const auto systolic_b = model.systolic();
    const auto zed_b = model.zed();
    const auto cgra_b = model.cgra();

    Table t("Figure 9: Canon's features ablated through its "
            "baselines (area deltas)");
    t.header({"Baseline", "Features removed (-) / added (+) vs Canon",
              "Baseline mm2", "Canon mm2", "Canon delta",
              "Paper delta"});
    auto delta = [&](double base) {
        const double d = canon_b.total() / base - 1.0;
        return (d >= 0 ? "+" : "") + Table::fmt(d * 100.0, 1) + "%";
    };
    t.addRow({"Systolic",
              "+orchestrators +distributed mem +reconfig NoC +spad",
              Table::fmt(systolic_b.total(), 3),
              Table::fmt(canon_b.total(), 3),
              delta(systolic_b.total()), "+30%"});
    t.addRow({"ZeD",
              "-specialized decode -crossbars +orchestrators "
              "+distributed mem",
              Table::fmt(zed_b.total(), 3),
              Table::fmt(canon_b.total(), 3), delta(zed_b.total()),
              "+9%"});
    t.addRow({"CGRA", "-instr mem +orchestrators +distributed mem",
              Table::fmt(cgra_b.total(), 3),
              Table::fmt(canon_b.total(), 3), delta(cgra_b.total()),
              "-7%"});
    t.print();
    t.writeCsv("fig09_ablation.csv");
    return 0;
}
