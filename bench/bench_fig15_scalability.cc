/**
 * @file
 * Figure 15: sensitivity to problem/array size and arithmetic
 * intensity. The fabric and the SpMM problem scale together (1x-8x);
 * at each scale several sparsity levels produce different arithmetic
 * intensities. The paper's claim to reproduce: utilization tracks
 * arithmetic intensity, with no clear correlation to scale.
 */

#include "common/table.hh"
#include "workloads/canon_runner.hh"

using namespace canon;

int
main()
{
    setQuiet(true);
    Table t("Figure 15: compute utilization vs array/problem scale "
            "and arithmetic intensity");
    t.header({"Scale", "PEs", "Sparsity", "ArithIntensity(ops/elem)",
              "Utilization"});

    for (int scale = 1; scale <= 8; ++scale) {
        CanonConfig cfg;
        cfg.rows = 8;
        cfg.cols = 8 * scale; // scale the array out column-wise
        CanonRunner runner(cfg);

        const std::int64_t m = 96;
        const std::int64_t k = 32 * scale * 8 / 8 * 8; // K scales too
        const std::int64_t n = cfg.cols * kSimdWidth;

        for (double sp : {0.30, 0.60, 0.90}) {
            Rng rng(static_cast<std::uint64_t>(scale) * 100 +
                    static_cast<std::uint64_t>(sp * 10));
            const auto a = randomSparse(
                static_cast<int>(m), static_cast<int>(k), sp, rng);
            const auto b = randomDense(static_cast<int>(k),
                                       static_cast<int>(n), rng);
            const auto csr = CsrMatrix::fromDense(a);

            const auto p = runner.spmmExact(csr, b);
            const auto lanes = static_cast<std::uint64_t>(
                cfg.numPes() * kSimdWidth);
            // Ops per fetched element: 2*N MACs per nnz over the
            // coordinate+value bytes.
            const double ai =
                2.0 * static_cast<double>(csr.nnz()) *
                static_cast<double>(n) /
                (static_cast<double>(csr.nnz()) * 3.0 +
                 static_cast<double>(m) * 2.0);
            t.addRow({std::to_string(scale) + "x",
                      std::to_string(cfg.numPes()), Table::fmt(sp, 2),
                      Table::fmt(ai, 1),
                      Table::fmt(p.utilization(lanes), 3)});
        }
    }
    t.print();
    t.writeCsv("fig15_scalability.csv");

    // Control experiment: hold the workload's arithmetic intensity
    // fixed (same K, same sparsity) while the array scales -- the
    // paper's claim is that utilization then stays flat.
    Table t2("Figure 15 (control): fixed arithmetic intensity across "
             "scales");
    t2.header({"Scale", "PEs", "Sparsity", "Utilization"});
    for (int scale : {1, 2, 4, 8}) {
        CanonConfig cfg;
        cfg.rows = 8;
        cfg.cols = 8 * scale;
        CanonRunner runner(cfg);
        const std::int64_t k = 256;
        const std::int64_t n = cfg.cols * kSimdWidth;
        for (double sp : {0.30, 0.60}) {
            Rng rng(900 + scale * 10 +
                    static_cast<std::uint64_t>(sp * 10));
            // Deep M so fill/drain fractions do not masquerade as a
            // scale effect.
            const auto a = randomSparse(256, static_cast<int>(k), sp,
                                        rng);
            const auto b = randomDense(static_cast<int>(k),
                                       static_cast<int>(n), rng);
            const auto p = runner.spmmExact(CsrMatrix::fromDense(a), b);
            t2.addRow({std::to_string(scale) + "x",
                       std::to_string(cfg.numPes()),
                       Table::fmt(sp, 2),
                       Table::fmt(p.utilization(static_cast<std::uint64_t>(
                                      cfg.numPes() * kSimdWidth)),
                                  3)});
        }
    }
    t2.print();
    t2.writeCsv("fig15_fixed_ai.csv");

    std::puts("\nExpected shape: in the control table, utilization is "
              "flat in scale at\nfixed sparsity (fixed arithmetic "
              "intensity); in the main table it tracks\narithmetic "
              "intensity, not array size.");
    return 0;
}
