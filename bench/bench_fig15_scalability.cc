/**
 * @file
 * Thin entry point: the figure definition lives in bench/figures/
 * (see figure15Bench), execution and the shared --jobs/--shard
 * CLI in the FigureBench machinery on runner::ScenarioPool.
 */

#include "figures.hh"

int
main(int argc, char **argv)
{
    return canon::bench::figure15Bench().main(argc, argv);
}
